package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(7)
	b := NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitMix64DifferentSeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent streams", same)
	}
}

func TestNextUnitRange(t *testing.T) {
	rng := NewSplitMix64(3)
	for i := 0; i < 10000; i++ {
		u := rng.NextUnit()
		if u < 0 || u >= 1 {
			t.Fatalf("NextUnit out of range: %v", u)
		}
	}
}

func TestNextUnitMean(t *testing.T) {
	rng := NewSplitMix64(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += rng.NextUnit()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestNextBelowBounds(t *testing.T) {
	rng := NewSplitMix64(5)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := rng.NextBelow(n); v >= n {
				t.Fatalf("NextBelow(%d) = %d", n, v)
			}
		}
	}
}

func TestNextBelowPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSplitMix64(1).NextBelow(0)
}

func TestNextBelowUniform(t *testing.T) {
	rng := NewSplitMix64(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[rng.NextBelow(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from %v", i, c, want)
		}
	}
}

func TestMulmod61Identities(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 12345, 0},
		{1, 12345, 12345},
		{MersennePrime61 - 1, 1, MersennePrime61 - 1},
		{2, MersennePrime61 - 1, MersennePrime61 - 2},
	}
	for _, c := range cases {
		if got := mulmod61(c.a, c.b); got != c.want {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulmod61AgainstBigArithmetic(t *testing.T) {
	// Verify against naive 128-bit style computation via math/bits in a
	// different decomposition: (a mod p)(b mod p) mod p computed with
	// repeated addition on small operands.
	f := func(a, b uint16) bool {
		x, y := uint64(a), uint64(b)
		return mulmod61(x, y) == (x*y)%MersennePrime61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMulmod61Commutes(t *testing.T) {
	rng := NewSplitMix64(17)
	for i := 0; i < 1000; i++ {
		a := rng.NextBelow(MersennePrime61)
		b := rng.NextBelow(MersennePrime61)
		if mulmod61(a, b) != mulmod61(b, a) {
			t.Fatalf("mulmod61 not commutative for %d, %d", a, b)
		}
	}
}

func TestMulmod61Associates(t *testing.T) {
	rng := NewSplitMix64(19)
	for i := 0; i < 1000; i++ {
		a := rng.NextBelow(MersennePrime61)
		b := rng.NextBelow(MersennePrime61)
		c := rng.NextBelow(MersennePrime61)
		if mulmod61(mulmod61(a, b), c) != mulmod61(a, mulmod61(b, c)) {
			t.Fatalf("mulmod61 not associative for %d, %d, %d", a, b, c)
		}
	}
}

func TestPathHasherDeterministic(t *testing.T) {
	h1 := NewPathHasher(99, 8)
	h2 := NewPathHasher(99, 8)
	path := []uint32{3, 1, 4, 1, 5}
	if h1.Unit(path) != h2.Unit(path) {
		t.Fatal("same seed, same path, different hash")
	}
}

func TestPathHasherSeedSensitivity(t *testing.T) {
	h1 := NewPathHasher(1, 4)
	h2 := NewPathHasher(2, 4)
	path := []uint32{7, 8}
	if h1.Unit(path) == h2.Unit(path) {
		t.Fatal("different seeds produced equal hash (astronomically unlikely)")
	}
}

func TestPathHasherUnitRange(t *testing.T) {
	h := NewPathHasher(5, 6)
	rng := NewSplitMix64(6)
	for i := 0; i < 5000; i++ {
		ln := 1 + int(rng.NextBelow(6))
		path := make([]uint32, ln)
		for j := range path {
			path[j] = uint32(rng.NextBelow(1000))
		}
		u := h.Unit(path)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of range: %v", u)
		}
	}
}

func TestPathHasherOrderSensitive(t *testing.T) {
	h := NewPathHasher(21, 4)
	a := h.Unit([]uint32{1, 2, 3})
	b := h.Unit([]uint32{3, 2, 1})
	if a == b {
		t.Fatal("hash should depend on path order")
	}
}

func TestPathHasherLevelsIndependent(t *testing.T) {
	// The same fingerprint input at different lengths uses different
	// functions; check prefix extension changes the value distribution.
	h := NewPathHasher(33, 3)
	u1 := h.Unit([]uint32{5})
	u2 := h.Unit([]uint32{5, 5})
	if u1 == u2 {
		t.Fatal("different levels gave identical hash")
	}
}

func TestUnitExtMatchesUnit(t *testing.T) {
	h := NewPathHasher(44, 10)
	rng := NewSplitMix64(44)
	for trial := 0; trial < 2000; trial++ {
		ln := int(rng.NextBelow(9))
		v := make([]uint32, ln)
		for j := range v {
			v[j] = uint32(rng.NextBelow(5000))
		}
		i := uint32(rng.NextBelow(5000))
		full := append(append([]uint32{}, v...), i)
		if got, want := h.UnitExt(v, i), h.Unit(full); got != want {
			t.Fatalf("UnitExt mismatch: %v vs %v", got, want)
		}
	}
}

func TestPathHasherUniformity(t *testing.T) {
	// Hash many distinct paths of length 2 and check the empirical mean
	// and a coarse bucket chi-square-ish bound.
	h := NewPathHasher(55, 2)
	const buckets = 16
	counts := make([]int, buckets)
	n := 0
	sum := 0.0
	for a := uint32(0); a < 100; a++ {
		for b := uint32(0); b < 100; b++ {
			u := h.Unit([]uint32{a, b})
			sum += u
			counts[int(u*buckets)]++
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean hash value %v, want ~0.5", mean)
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from %v", i, c, want)
		}
	}
}

func TestPathHasherCollisionRate(t *testing.T) {
	// Distinct short paths should essentially never collide in [0,1).
	h := NewPathHasher(77, 3)
	seen := make(map[float64][]uint32)
	collisions := 0
	for a := uint32(0); a < 60; a++ {
		for b := uint32(0); b < 60; b++ {
			u := h.Unit([]uint32{a, b})
			if _, ok := seen[u]; ok {
				collisions++
			}
			seen[u] = []uint32{a, b}
		}
	}
	if collisions > 0 {
		t.Errorf("%d collisions among 3600 short paths", collisions)
	}
}

func TestPathHasherPanics(t *testing.T) {
	h := NewPathHasher(1, 2)
	for _, path := range [][]uint32{{}, {1, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for path %v", path)
				}
			}()
			h.Unit(path)
		}()
	}
}

func TestNewPathHasherPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPathHasher(1, 0)
}

// TestExpandedHashMatchesUnit proves the expanded extension hash
// (Bias + ExtTerm composed by ExtHash) is the same canonical value
// Unit divides, and that the integer cutoff test ExtHash >= UnitCut(s)
// decides exactly like the float comparison Unit >= s — the identity
// the filter engine's integer inner loop rests on.
func TestExpandedHashMatchesUnit(t *testing.T) {
	ph := NewPathHasher(99, 8)
	rng := NewSplitMix64(5)
	for trial := 0; trial < 2000; trial++ {
		pl := int(rng.NextBelow(7))
		path := make([]uint32, pl)
		for k := range path {
			path[k] = uint32(rng.Next())
		}
		i := uint32(rng.Next())
		ext := ph.Extend(path)
		h := ExtHash(ext.Bias(), ph.ExtTerm(pl+1, i))
		unit := ext.Unit(i)
		if got := float64(h) / float64(MersennePrime61); got != unit {
			t.Fatalf("trial %d: expanded hash %d gives unit %v, Unit says %v", trial, h, got, unit)
		}
		// Thresholds around the hash's own unit value are the adversarial
		// cases: the cutoff must flip exactly where the float compare does.
		for _, s := range []float64{
			unit,
			math.Nextafter(unit, 0),
			math.Nextafter(unit, 1),
			rng.NextUnit(),
			0, 1, -0.5, 1.5,
			math.Inf(1), math.Inf(-1), math.NaN(),
		} {
			wantReject := unit >= s
			if gotReject := h >= UnitCut(s); gotReject != wantReject {
				t.Fatalf("trial %d: s=%v h=%d unit=%v: cutoff rejects %v, float rejects %v",
					trial, s, h, unit, gotReject, wantReject)
			}
		}
	}
}
