// Package bruteforce provides the exact linear-scan baseline: every query
// verifies every data vector. It anchors the §8 experiments (cost
// exponent exactly 1) and serves as the ground-truth oracle for recall
// measurements of the randomized indexes.
package bruteforce

import (
	"cmp"
	"errors"
	"slices"

	"skewsim/internal/bitvec"
)

// Index is a trivial wrapper around the dataset.
type Index struct {
	data    []bitvec.Vector
	measure bitvec.Measure
}

// Options tunes the scan.
type Options struct {
	Measure bitvec.Measure
}

// Build retains the data slice.
func Build(data []bitvec.Vector, opt Options) (*Index, error) {
	if len(data) == 0 {
		return nil, errors.New("bruteforce: empty dataset")
	}
	return &Index{data: data, measure: opt.Measure}, nil
}

// Data returns the indexed vectors.
func (ix *Index) Data() []bitvec.Vector { return ix.data }

// Result mirrors the other indexes' result type.
type Result struct {
	ID         int
	Similarity float64
	Found      bool
	Stats      Stats
}

// Stats counts the verified candidates (always n for a scan).
type Stats struct {
	Candidates int
	Distinct   int
}

// Query returns the most similar vector if it reaches threshold.
func (ix *Index) Query(q bitvec.Vector, threshold float64) Result {
	res := ix.QueryBest(q)
	if !res.Found || res.Similarity < threshold {
		return Result{ID: -1, Stats: res.Stats}
	}
	return res
}

// QueryBest scans everything and returns the argmax. Ties break toward
// the lowest id, making results deterministic.
func (ix *Index) QueryBest(q bitvec.Vector) Result {
	res := Result{ID: -1, Similarity: -1}
	for id, x := range ix.data {
		res.Stats.Candidates++
		res.Stats.Distinct++
		if s := ix.measure.Similarity(q, x); s > res.Similarity {
			res.ID, res.Similarity, res.Found = id, s, true
		}
	}
	if !res.Found {
		res.Similarity = 0
	}
	return res
}

// Match is one entry of a top-k result list.
type Match struct {
	ID         int
	Similarity float64
}

// QueryTopK returns the exact k most similar vectors (ties by ascending
// id), the ground truth for evaluating the approximate indexes' top-k.
func (ix *Index) QueryTopK(q bitvec.Vector, k int) []Match {
	if k <= 0 {
		return nil
	}
	matches := make([]Match, 0, len(ix.data))
	for id, x := range ix.data {
		if s := ix.measure.Similarity(q, x); s > 0 {
			matches = append(matches, Match{ID: id, Similarity: s})
		}
	}
	slices.SortFunc(matches, func(a, b Match) int {
		if a.Similarity != b.Similarity {
			return cmp.Compare(b.Similarity, a.Similarity)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// Candidates returns all ids (the scan's candidate set).
func (ix *Index) Candidates(q bitvec.Vector) []int32 {
	out := make([]int32, len(ix.data))
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
