package bruteforce

import (
	"testing"

	"skewsim/internal/bitvec"
)

func testData() []bitvec.Vector {
	return []bitvec.Vector{
		bitvec.New(1, 2, 3),
		bitvec.New(1, 2, 3, 4),
		bitvec.New(10, 11),
		bitvec.New(),
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty data should fail")
	}
}

func TestQueryBestExact(t *testing.T) {
	ix, err := Build(testData(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.QueryBest(bitvec.New(1, 2, 3))
	if !res.Found || res.ID != 0 || res.Similarity != 1 {
		t.Errorf("QueryBest = %+v", res)
	}
	if res.Stats.Candidates != 4 || res.Stats.Distinct != 4 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestQueryThreshold(t *testing.T) {
	ix, _ := Build(testData(), Options{})
	if res := ix.Query(bitvec.New(10, 11), 1.0); !res.Found || res.ID != 2 {
		t.Errorf("exact match not found: %+v", res)
	}
	if res := ix.Query(bitvec.New(50, 51), 0.1); res.Found {
		t.Errorf("disjoint query matched: %+v", res)
	}
	// Below-threshold best must be rejected.
	if res := ix.Query(bitvec.New(1, 9, 8, 7), 0.9); res.Found {
		t.Errorf("weak match passed high threshold: %+v", res)
	}
}

func TestTieBreaksLowestID(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(5, 6), bitvec.New(5, 6)}
	ix, _ := Build(data, Options{})
	if res := ix.QueryBest(bitvec.New(5, 6)); res.ID != 0 {
		t.Errorf("tie should break to id 0, got %d", res.ID)
	}
}

func TestCandidatesReturnsAll(t *testing.T) {
	ix, _ := Build(testData(), Options{})
	ids := ix.Candidates(bitvec.New(1))
	if len(ids) != 4 {
		t.Fatalf("got %d ids", len(ids))
	}
	for i, id := range ids {
		if int(id) != i {
			t.Errorf("ids[%d] = %d", i, id)
		}
	}
	if len(ix.Data()) != 4 {
		t.Error("Data accessor wrong")
	}
}

func TestEmptyQueryAgainstEmptyVector(t *testing.T) {
	ix, _ := Build(testData(), Options{})
	res := ix.QueryBest(bitvec.New())
	// All similarities are 0; argmax stays at first vector with sim 0 > -1.
	if !res.Found || res.Similarity != 0 {
		t.Errorf("empty query: %+v", res)
	}
}

func TestMeasureOption(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(1, 2, 3, 4), bitvec.New(1, 2)}
	ix, _ := Build(data, Options{Measure: bitvec.OverlapMeasure})
	// Overlap(q={1,2}, {1,2,3,4}) = 2/2 = 1 — both hit 1.0; tie → id 0.
	res := ix.QueryBest(bitvec.New(1, 2))
	if res.Similarity != 1 || res.ID != 0 {
		t.Errorf("overlap measure result %+v", res)
	}
}
