package datagen

import (
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
)

func testDist(t *testing.T) *dist.Product {
	t.Helper()
	return dist.MustProduct(dist.Uniform(400, 0.1))
}

func TestNewCorrelatedWorkloadShape(t *testing.T) {
	w, err := NewCorrelatedWorkload(testDist(t), 100, 10, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Data) != 100 || len(w.Queries) != 10 || len(w.Targets) != 10 {
		t.Fatalf("shape wrong: %d, %d, %d", len(w.Data), len(w.Queries), len(w.Targets))
	}
	for _, tgt := range w.Targets {
		if tgt < 0 || tgt >= 100 {
			t.Fatalf("target out of range: %d", tgt)
		}
	}
}

func TestNewCorrelatedWorkloadTargetsSpread(t *testing.T) {
	w, err := NewCorrelatedWorkload(testDist(t), 100, 4, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 25, 50, 75}
	for i, tgt := range w.Targets {
		if tgt != want[i] {
			t.Errorf("target %d = %d, want %d", i, tgt, want[i])
		}
	}
}

func TestNewCorrelatedWorkloadQueriesCorrelated(t *testing.T) {
	// With alpha=0.8 the planted pair should be far more similar than a
	// random pair.
	d := testDist(t)
	w, err := NewCorrelatedWorkload(d, 200, 20, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range w.Queries {
		target := w.Data[w.Targets[k]]
		simT := bitvec.BraunBlanquet(q, target)
		other := w.Data[(w.Targets[k]+77)%len(w.Data)]
		simO := bitvec.BraunBlanquet(q, other)
		if simT <= simO {
			t.Errorf("query %d: target sim %v not above random sim %v", k, simT, simO)
		}
	}
}

func TestNewCorrelatedWorkloadValidation(t *testing.T) {
	d := testDist(t)
	if _, err := NewCorrelatedWorkload(d, 0, 1, 0.5, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewCorrelatedWorkload(d, 1, 0, 0.5, 1); err == nil {
		t.Error("queries=0 should fail")
	}
	for _, a := range []float64{0, -1, 1.5} {
		if _, err := NewCorrelatedWorkload(d, 1, 1, a, 1); err == nil {
			t.Errorf("alpha=%v should fail", a)
		}
	}
}

func TestNewCorrelatedWorkloadDeterministic(t *testing.T) {
	d := testDist(t)
	w1, _ := NewCorrelatedWorkload(d, 50, 5, 0.6, 42)
	w2, _ := NewCorrelatedWorkload(d, 50, 5, 0.6, 42)
	for i := range w1.Data {
		if !w1.Data[i].Equal(w2.Data[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	for i := range w1.Queries {
		if !w1.Queries[i].Equal(w2.Queries[i]) {
			t.Fatal("same seed produced different queries")
		}
	}
}

func TestNewAdversarialWorkloadSimilarityGuarantee(t *testing.T) {
	d := testDist(t)
	b1 := 0.5
	w, err := NewAdversarialWorkload(d, 150, 30, b1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range w.Queries {
		target := w.Data[w.Targets[k]]
		if got := bitvec.BraunBlanquet(q, target); got < b1-1e-9 {
			t.Errorf("query %d: similarity %v below b1=%v", k, got, b1)
		}
		if q.Len() > target.Len() {
			t.Errorf("query %d: |q|=%d exceeds |x|=%d", k, q.Len(), target.Len())
		}
	}
}

func TestNewAdversarialWorkloadB1One(t *testing.T) {
	// b1=1 requires q ⊆ x with |q| = |x|, i.e. q = x.
	d := testDist(t)
	w, err := NewAdversarialWorkload(d, 40, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range w.Queries {
		if !q.Equal(w.Data[w.Targets[k]]) {
			t.Errorf("query %d should equal its target for b1=1", k)
		}
	}
}

func TestNewAdversarialWorkloadValidation(t *testing.T) {
	d := testDist(t)
	if _, err := NewAdversarialWorkload(d, 0, 1, 0.5, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewAdversarialWorkload(d, 1, 0, 0.5, 1); err == nil {
		t.Error("queries=0 should fail")
	}
	for _, b := range []float64{0, 1.2} {
		if _, err := NewAdversarialWorkload(d, 1, 1, b, 1); err == nil {
			t.Errorf("b1=%v should fail", b)
		}
	}
}

func TestAdversarialWorkloadTinySupport(t *testing.T) {
	// A distribution whose support is so small that padding cannot
	// complete must still terminate and keep the similarity guarantee.
	d := dist.MustProduct([]float64{0.5, 0.5, 0.5})
	w, err := NewAdversarialWorkload(d, 10, 5, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for k, q := range w.Queries {
		target := w.Data[w.Targets[k]]
		if target.Len() == 0 {
			continue
		}
		if got := bitvec.BraunBlanquet(q, target); got < 0.5-1e-9 {
			t.Errorf("query %d: similarity %v", k, got)
		}
	}
}

func TestContainsHelper(t *testing.T) {
	xs := []uint32{1, 5, 9}
	if !contains(xs, 5) || contains(xs, 2) || contains(nil, 0) {
		t.Error("contains helper misbehaves")
	}
}
