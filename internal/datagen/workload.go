package datagen

import (
	"fmt"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// CorrelatedWorkload is a Theorem 1 instance: n data vectors drawn from D
// plus queries q ~ D_α(x) for planted targets x ∈ S.
type CorrelatedWorkload struct {
	D       *dist.Product
	Alpha   float64
	Data    []bitvec.Vector
	Queries []bitvec.Vector
	// Targets[k] is the index into Data of the vector Queries[k] was
	// correlated with.
	Targets []int
}

// NewCorrelatedWorkload samples a correlated-query workload. Targets are
// spread deterministically over the dataset (query k targets vector
// k·n/q) so repeated runs stress different regions.
func NewCorrelatedWorkload(d *dist.Product, n, queries int, alpha float64, seed uint64) (*CorrelatedWorkload, error) {
	if n < 1 || queries < 1 {
		return nil, fmt.Errorf("datagen: need n >= 1 and queries >= 1, got %d, %d", n, queries)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("datagen: alpha %v outside (0, 1]", alpha)
	}
	rng := hashing.NewSplitMix64(seed)
	w := &CorrelatedWorkload{
		D:       d,
		Alpha:   alpha,
		Data:    d.SampleN(rng, n),
		Queries: make([]bitvec.Vector, queries),
		Targets: make([]int, queries),
	}
	for k := 0; k < queries; k++ {
		t := k * n / queries
		w.Targets[k] = t
		w.Queries[k] = d.SampleCorrelated(rng, w.Data[t], alpha)
	}
	return w, nil
}

// AdversarialWorkload is a Theorem 2 instance: n data vectors from D plus
// queries constructed (not sampled) to have Braun-Blanquet similarity at
// least b1 with their planted target.
type AdversarialWorkload struct {
	D       *dist.Product
	B1      float64
	Data    []bitvec.Vector
	Queries []bitvec.Vector
	Targets []int
}

// NewAdversarialWorkload builds queries by keeping a ⌈b1·|x|⌉-subset of a
// planted x and padding with fresh draws from D restricted to bits outside
// x until the query has |x| bits (so max(|x|, |q|) = |x| and
// B(x, q) ≥ b1 holds deterministically).
func NewAdversarialWorkload(d *dist.Product, n, queries int, b1 float64, seed uint64) (*AdversarialWorkload, error) {
	if n < 1 || queries < 1 {
		return nil, fmt.Errorf("datagen: need n >= 1 and queries >= 1, got %d, %d", n, queries)
	}
	if b1 <= 0 || b1 > 1 {
		return nil, fmt.Errorf("datagen: b1 %v outside (0, 1]", b1)
	}
	rng := hashing.NewSplitMix64(seed)
	w := &AdversarialWorkload{
		D:       d,
		B1:      b1,
		Data:    d.SampleN(rng, n),
		Queries: make([]bitvec.Vector, queries),
		Targets: make([]int, queries),
	}
	for k := 0; k < queries; k++ {
		t := k * n / queries
		w.Targets[k] = t
		w.Queries[k] = adversarialQuery(rng, d, w.Data[t], b1)
	}
	return w, nil
}

// adversarialQuery keeps the first ⌈b1·|x|⌉ bits of x (ties to the rarest
// region are irrelevant for correctness: any subset works) and pads with
// noise bits not in x.
func adversarialQuery(rng *hashing.SplitMix64, d *dist.Product, x bitvec.Vector, b1 float64) bitvec.Vector {
	keepN := int(float64(x.Len())*b1 + 0.999999)
	if keepN > x.Len() {
		keepN = x.Len()
	}
	xb := x.Bits()
	// Random subset of x of size keepN via reservoir-style selection.
	kept := make([]uint32, 0, keepN)
	need := keepN
	remaining := len(xb)
	for _, b := range xb {
		if need == 0 {
			break
		}
		if rng.NextBelow(uint64(remaining)) < uint64(need) {
			kept = append(kept, b)
			need--
		}
		remaining--
	}
	q := bitvec.FromSorted(kept)
	// Pad with noise outside x until |q| = |x|. Draw noise from D so the
	// padding respects the skew profile; skip bits already present.
	pad := x.Len() - q.Len()
	if pad > 0 {
		noise := make([]uint32, 0, pad)
		// Distributions with tiny support may not be able to pad fully;
		// cap the attempts and accept a shorter query (similarity only
		// improves when |q| < |x|).
		for attempts := 0; pad > 0 && attempts < 64; attempts++ {
			v := d.Sample(rng)
			for _, b := range v.Bits() {
				if pad == 0 {
					break
				}
				if !x.Contains(b) && !q.Contains(b) && !contains(noise, b) {
					noise = append(noise, b)
					pad--
				}
			}
		}
		q = q.Union(bitvec.New(noise...))
	}
	return q
}

func contains(xs []uint32, v uint32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
