// Package datagen builds every synthetic input the experiments need:
//
//   - analogs of the ten real-world datasets of Mann et al. used by the
//     paper's §8 (Figure 2 and Table 1), since the original files are not
//     available in this environment (see DESIGN.md "Substitutions");
//   - planted-pair workloads for correlated queries (Theorem 1) and
//     threshold workloads for adversarial queries (Theorem 2).
//
// # Dataset analogs
//
// Each analog combines two mechanisms measured in §8:
//
//  1. a piecewise-Zipfian item-frequency profile (Figure 2 reports that
//     real frequency spectra are "close to piecewise Zipfian");
//  2. a per-vector activity scale s with E[s] = 1 drawn from a lognormal
//     distribution: item i is set with probability min(1, s·p_i).
//
// The second mechanism reproduces Table 1's deviation from independence
// analytically: Pr[x_i = x_j = 1] = E[s²]·p_i·p_j, so the pairwise
// independence ratio is E[s²] = exp(σ²) and the triple ratio is
// E[s³] = exp(3σ²) (before clipping). Choosing σ² = ln(paper's pairwise
// ratio) therefore matches the |I|=2 column exactly in expectation and
// predicts the |I|=3 column within the factor-2 band the real data shows.
package datagen

import (
	"fmt"
	"math"

	"skewsim/internal/bitvec"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

// DatasetProfile describes one synthetic analog of a Mann et al. dataset.
type DatasetProfile struct {
	Name     string
	Dim      int     // universe size of the analog (scaled down from the original)
	PMax     float64 // frequency of the most frequent item
	Segments []dist.PiecewiseZipfSegment
	// PairRatio is the paper's measured |I|=2 independence ratio; the
	// generator's activity-scale variance is derived from it.
	PairRatio float64
	// TripleRatioPaper is the measured |I|=3 ratio, recorded for the
	// Table 1 experiment's "paper" column.
	TripleRatioPaper float64
}

// SigmaSq returns the lognormal log-variance σ² = ln(PairRatio) of the
// activity scale.
func (p DatasetProfile) SigmaSq() float64 {
	if p.PairRatio <= 1 {
		return 0
	}
	return math.Log(p.PairRatio)
}

// PredictedTripleRatio returns the generator's analytic |I|=3 ratio,
// exp(3σ²) = PairRatio³.
func (p DatasetProfile) PredictedTripleRatio() float64 {
	r := p.PairRatio
	return r * r * r
}

// Frequencies materializes the item-frequency vector of the analog,
// clamped into the model's valid range.
func (p DatasetProfile) Frequencies() []float64 {
	f := dist.PiecewiseZipf(p.Dim, p.PMax, p.Segments)
	return dist.Clamp(f, 0)
}

// Generate draws n vectors from the analog: per vector, an activity scale
// s = exp(σZ − σ²/2) (so E[s] = 1), then independent bits with
// probability min(0.999, s·p_i).
func (p DatasetProfile) Generate(rng *hashing.SplitMix64, n int) []bitvec.Vector {
	freqs := p.Frequencies()
	sigma := math.Sqrt(p.SigmaSq())
	out := make([]bitvec.Vector, n)
	for v := range out {
		s := 1.0
		if sigma > 0 {
			s = math.Exp(sigma*gaussian(rng) - sigma*sigma/2)
		}
		bits := make([]uint32, 0, 16)
		for i, f := range freqs {
			q := s * f
			if q > 0.999 {
				q = 0.999
			}
			if q > 0 && rng.NextUnit() < q {
				bits = append(bits, uint32(i))
			}
		}
		out[v] = bitvec.FromSorted(bits)
	}
	return out
}

// gaussian returns a standard normal variate via Box–Muller.
func gaussian(rng *hashing.SplitMix64) float64 {
	// Guard against log(0).
	u1 := rng.NextUnit()
	for u1 == 0 {
		u1 = rng.NextUnit()
	}
	u2 := rng.NextUnit()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Profiles returns the ten analogs in the order of the paper's Table 1.
// Dimensions are scaled to laptop size; segment shapes are qualitative
// fits to the spectra plotted in Figure 2 (flat frequent head for the
// transaction-style datasets, steep tails for the long-tailed ones).
func Profiles() []DatasetProfile {
	return []DatasetProfile{
		{
			Name: "AOL", Dim: 30000, PMax: 0.25,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.3, S: 0.4}, {FracEnd: 1, S: 1.3},
			},
			PairRatio: 1.2, TripleRatioPaper: 3.9,
		},
		{
			Name: "BMS-POS", Dim: 2000, PMax: 0.5,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.5, S: 0.7}, {FracEnd: 1, S: 1.6},
			},
			PairRatio: 1.5, TripleRatioPaper: 3.9,
		},
		{
			Name: "DBLP", Dim: 8000, PMax: 0.3,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.4, S: 0.5}, {FracEnd: 1, S: 1.2},
			},
			PairRatio: 1.4, TripleRatioPaper: 2.3,
		},
		{
			Name: "ENRON", Dim: 20000, PMax: 0.35,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.35, S: 0.6}, {FracEnd: 1, S: 1.4},
			},
			PairRatio: 2.9, TripleRatioPaper: 21.8,
		},
		{
			Name: "FLICKR", Dim: 25000, PMax: 0.3,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.25, S: 0.5}, {FracEnd: 1, S: 1.5},
			},
			PairRatio: 1.7, TripleRatioPaper: 4.9,
		},
		{
			Name: "KOSARAK", Dim: 15000, PMax: 0.5,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.2, S: 0.8}, {FracEnd: 1, S: 1.7},
			},
			PairRatio: 7.1, TripleRatioPaper: 269.4,
		},
		{
			Name: "LIVEJOURNAL", Dim: 25000, PMax: 0.3,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.3, S: 0.6}, {FracEnd: 1, S: 1.3},
			},
			PairRatio: 2.3, TripleRatioPaper: 7.3,
		},
		{
			Name: "NETFLIX", Dim: 5000, PMax: 0.5,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.6, S: 0.5}, {FracEnd: 1, S: 1.1},
			},
			PairRatio: 3.1, TripleRatioPaper: 24.0,
		},
		{
			Name: "ORKUT", Dim: 30000, PMax: 0.25,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.4, S: 0.7}, {FracEnd: 1, S: 1.4},
			},
			PairRatio: 4.0, TripleRatioPaper: 37.9,
		},
		{
			Name: "SPOTIFY", Dim: 12000, PMax: 0.2,
			Segments: []dist.PiecewiseZipfSegment{
				{FracEnd: 0.5, S: 0.9}, {FracEnd: 1, S: 1.8},
			},
			PairRatio: 24.7, TripleRatioPaper: 6022.1,
		},
	}
}

// ProfileByName looks up an analog by its (case-sensitive) name.
func ProfileByName(name string) (DatasetProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return DatasetProfile{}, fmt.Errorf("datagen: unknown dataset profile %q", name)
}
