package datagen

import (
	"math"
	"testing"

	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("want 10 analogs, got %d", len(ps))
	}
	wantOrder := []string{"AOL", "BMS-POS", "DBLP", "ENRON", "FLICKR",
		"KOSARAK", "LIVEJOURNAL", "NETFLIX", "ORKUT", "SPOTIFY"}
	for i, p := range ps {
		if p.Name != wantOrder[i] {
			t.Errorf("profile %d is %q, want %q (Table 1 order)", i, p.Name, wantOrder[i])
		}
		if p.Dim < 100 || p.PMax <= 0 || p.PMax > 0.5 {
			t.Errorf("%s: implausible Dim=%d PMax=%v", p.Name, p.Dim, p.PMax)
		}
		if p.PairRatio < 1 || p.TripleRatioPaper < p.PairRatio {
			t.Errorf("%s: ratios %v, %v inconsistent", p.Name, p.PairRatio, p.TripleRatioPaper)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("SPOTIFY")
	if err != nil || p.Name != "SPOTIFY" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestSigmaSqAndPredictedTriple(t *testing.T) {
	p := DatasetProfile{PairRatio: 2.0}
	if got := p.SigmaSq(); !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("SigmaSq = %v", got)
	}
	if got := p.PredictedTripleRatio(); !almostEqual(got, 8, 1e-12) {
		t.Errorf("PredictedTripleRatio = %v", got)
	}
	indep := DatasetProfile{PairRatio: 1.0}
	if indep.SigmaSq() != 0 {
		t.Error("PairRatio=1 should give sigma 0")
	}
}

func TestFrequenciesValidAndSkewed(t *testing.T) {
	for _, p := range Profiles() {
		f := p.Frequencies()
		if len(f) != p.Dim {
			t.Fatalf("%s: dim mismatch", p.Name)
		}
		if f[0] != p.PMax {
			t.Errorf("%s: head frequency %v, want %v", p.Name, f[0], p.PMax)
		}
		for i := 1; i < len(f); i++ {
			if f[i] > f[i-1]+1e-15 {
				t.Fatalf("%s: frequencies not decreasing at %d", p.Name, i)
			}
		}
		// Figure 2's point: all datasets display significant skew. Demand
		// at least ~2.5 orders of magnitude between head and tail (NETFLIX
		// is the flattest analog, matching its dense real counterpart).
		if f[0]/f[len(f)-1] < 300 {
			t.Errorf("%s: insufficient skew: head %v tail %v", p.Name, f[0], f[len(f)-1])
		}
	}
}

func TestGeneratePreservesMarginals(t *testing.T) {
	// With the activity scale, the marginal frequency of item i remains
	// ≈ p_i (E[s] = 1) up to clipping.
	p := DatasetProfile{
		Name: "test", Dim: 500, PMax: 0.2,
		Segments:  []dist.PiecewiseZipfSegment{{FracEnd: 1, S: 1.0}},
		PairRatio: 1.5,
	}
	rng := hashing.NewSplitMix64(1)
	const n = 8000
	data := p.Generate(rng, n)
	freqs := p.Frequencies()
	est := dist.EstimateFrequencies(data, p.Dim)
	for _, i := range []int{0, 1, 5, 20} {
		tol := 5*math.Sqrt(freqs[i]/n) + 0.01
		if math.Abs(est[i]-freqs[i]) > tol {
			t.Errorf("item %d: est %v, want %v ± %v", i, est[i], freqs[i], tol)
		}
	}
}

func TestGenerateIndependentWhenRatioOne(t *testing.T) {
	p := DatasetProfile{
		Name: "indep", Dim: 200, PMax: 0.3,
		Segments:  []dist.PiecewiseZipfSegment{{FracEnd: 1, S: 0.8}},
		PairRatio: 1.0,
	}
	rng := hashing.NewSplitMix64(3)
	data := p.Generate(rng, 4000)
	r := dist.IndependenceRatio(data, p.Dim, 2, 600, 7)
	if r < 0.85 || r > 1.15 {
		t.Errorf("independence ratio %v, want ~1", r)
	}
}

func TestGenerateProducesTargetPairRatio(t *testing.T) {
	p := DatasetProfile{
		Name: "corr", Dim: 200, PMax: 0.2,
		Segments:  []dist.PiecewiseZipfSegment{{FracEnd: 1, S: 0.5}},
		PairRatio: 3.0,
	}
	rng := hashing.NewSplitMix64(5)
	data := p.Generate(rng, 6000)
	r := dist.IndependenceRatio(data, p.Dim, 2, 800, 11)
	// Clipping at 0.999 and sampling noise allow generous tolerance; the
	// point is the ratio is clearly near 3, not near 1.
	if r < 2.0 || r > 4.5 {
		t.Errorf("pair ratio %v, want ≈3", r)
	}
}

func TestGenerateTripleExceedsPairRatio(t *testing.T) {
	p := DatasetProfile{
		Name: "corr3", Dim: 150, PMax: 0.25,
		Segments:  []dist.PiecewiseZipfSegment{{FracEnd: 1, S: 0.4}},
		PairRatio: 2.5,
	}
	rng := hashing.NewSplitMix64(9)
	data := p.Generate(rng, 6000)
	r2 := dist.IndependenceRatio(data, p.Dim, 2, 600, 13)
	r3 := dist.IndependenceRatio(data, p.Dim, 3, 600, 17)
	if r3 <= r2 {
		t.Errorf("triple ratio %v should exceed pair ratio %v (Table 1 shape)", r3, r2)
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		z := gaussian(rng)
		sum += z
		sumsq += z * z
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance %v", variance)
	}
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
