package wal

import (
	"encoding/binary"
	"fmt"
)

// Op is the record type tag, the first payload byte of every frame.
type Op uint8

const (
	// OpInsert logs one inserted vector: the external id and its sorted
	// bit list. Appended before the memtable mutation it describes.
	OpInsert Op = 1
	// OpDelete logs one tombstoned external id. Appended before the
	// tombstone is applied.
	OpDelete Op = 2
	// OpCheckpoint is the durability fence a completed background freeze
	// appends after its frozen segment reached disk: the caller
	// guarantees the effects of every record with LSN <= Through are
	// durable outside the log (vectors in checkpoint segment files,
	// tombstones in their dead-id lists), so replay may skip fenced
	// insert records and whole log files at or below the fence may be
	// deleted.
	OpCheckpoint Op = 3
)

func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Record is one logical log entry. Exactly the fields relevant to
// Record.Op are meaningful:
//
//	OpInsert:     ID, Bits
//	OpDelete:     ID
//	OpCheckpoint: Seq (checkpoint segment file sequence), Through (LSN fence)
type Record struct {
	Op      Op
	ID      int64
	Bits    []uint32
	Seq     uint64
	Through uint64
}

// appendRecord appends the little-endian payload encoding of rec to
// dst. The layouts (op byte first, everything fixed-width) are:
//
//	insert:     0x01 | id u64 | n u32 | n × bit u32
//	delete:     0x02 | id u64
//	checkpoint: 0x03 | seq u64 | through u64
func appendRecord(dst []byte, rec Record) []byte {
	dst = append(dst, byte(rec.Op))
	switch rec.Op {
	case OpInsert:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ID))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Bits)))
		for _, b := range rec.Bits {
			dst = binary.LittleEndian.AppendUint32(dst, b)
		}
	case OpDelete:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ID))
	case OpCheckpoint:
		dst = binary.LittleEndian.AppendUint64(dst, rec.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, rec.Through)
	default:
		panic(fmt.Sprintf("wal: encoding unknown op %d", rec.Op))
	}
	return dst
}

// EncodeRecord appends the payload encoding of rec to dst — the same
// bytes Append frames into the log. Exported for the replication feed
// tests and follower-side tooling; the canonical write path is Append.
func EncodeRecord(dst []byte, rec Record) []byte { return appendRecord(dst, rec) }

// DecodeRecord parses a frame payload produced by EncodeRecord (or
// streamed by Log.ReadFrom). The returned Bits slice is freshly
// allocated, so the record stays valid after the payload buffer is
// reused.
func DecodeRecord(payload []byte) (Record, error) { return decodeRecord(payload) }

// decodeRecord parses a frame payload. The returned Bits slice is
// freshly allocated (payload buffers are reused by the frame reader).
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	rec := Record{Op: Op(payload[0])}
	body := payload[1:]
	switch rec.Op {
	case OpInsert:
		if len(body) < 12 {
			return Record{}, fmt.Errorf("wal: short insert record (%d bytes)", len(payload))
		}
		rec.ID = int64(binary.LittleEndian.Uint64(body[0:8]))
		n := binary.LittleEndian.Uint32(body[8:12])
		if uint64(len(body)) != 12+4*uint64(n) {
			return Record{}, fmt.Errorf("wal: insert record claims %d bits in %d bytes", n, len(payload))
		}
		rec.Bits = make([]uint32, n)
		for i := range rec.Bits {
			rec.Bits[i] = binary.LittleEndian.Uint32(body[12+4*i:])
		}
	case OpDelete:
		if len(body) != 8 {
			return Record{}, fmt.Errorf("wal: short delete record (%d bytes)", len(payload))
		}
		rec.ID = int64(binary.LittleEndian.Uint64(body))
	case OpCheckpoint:
		if len(body) != 16 {
			return Record{}, fmt.Errorf("wal: short checkpoint record (%d bytes)", len(payload))
		}
		rec.Seq = binary.LittleEndian.Uint64(body[0:8])
		rec.Through = binary.LittleEndian.Uint64(body[8:16])
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", payload[0])
	}
	return rec, nil
}
