package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"skewsim/internal/dataio"
)

// decodeStream walks a ReadFrom buffer back into records.
func decodeStream(t *testing.T, buf []byte) []Record {
	t.Helper()
	var recs []Record
	fr := dataio.NewFrameReader(bytes.NewReader(buf))
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("stream frame: %v", err)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("stream record: %v", err)
		}
		recs = append(recs, rec)
	}
}

func TestReadFromStreamsAllRecords(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 256, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := l.Append(Record{Op: OpInsert, ID: int64(i), Bits: []uint32{uint32(i), uint32(i) + 7}}); err != nil {
			t.Fatal(err)
		}
	}
	// Small SegmentBytes forces several rotations; the stream must cross
	// file boundaries with contiguous LSNs.
	buf, count, err := l.ReadFrom(1, 1<<20)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if count != n {
		t.Fatalf("ReadFrom count = %d, want %d", count, n)
	}
	recs := decodeStream(t, buf)
	for i, rec := range recs {
		if rec.Op != OpInsert || rec.ID != int64(i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	// Resume from the middle.
	buf, count, err = l.ReadFrom(21, 1<<20)
	if err != nil {
		t.Fatalf("ReadFrom(21): %v", err)
	}
	if count != n-20 {
		t.Fatalf("ReadFrom(21) count = %d, want %d", count, n-20)
	}
	if recs := decodeStream(t, buf); recs[0].ID != 20 {
		t.Fatalf("resumed stream starts at id %d, want 20", recs[0].ID)
	}
	// At the head: nothing to stream.
	if _, count, err := l.ReadFrom(uint64(n)+1, 1<<20); err != nil || count != 0 {
		t.Fatalf("ReadFrom at head = %d records, err %v", count, err)
	}
}

func TestReadFromHonorsMaxBytes(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		if _, err := l.Append(Record{Op: OpInsert, ID: int64(i), Bits: []uint32{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	from := uint64(1)
	calls := 0
	for {
		buf, count, err := l.ReadFrom(from, 64)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		if count == 0 {
			break
		}
		got = append(got, decodeStream(t, buf)...)
		from += uint64(count)
		calls++
	}
	if len(got) != 100 {
		t.Fatalf("paged stream yielded %d records, want 100", len(got))
	}
	if calls < 10 {
		t.Fatalf("64-byte pages took %d calls — cap not honored", calls)
	}
	for i, rec := range got {
		if rec.ID != int64(i) {
			t.Fatalf("record %d has id %d", i, rec.ID)
		}
	}
}

func TestReadFromBelowCheckpointIsCompacted(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ {
		if _, err := l.Append(Record{Op: OpInsert, ID: int64(i), Bits: []uint32{uint32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Fence and truncate a prefix: whole files at or below LSN 20 go.
	if err := l.Checkpoint(1, 20); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("OldestLSN = %d after truncation, want > 1", oldest)
	}
	if _, _, err := l.ReadFrom(1, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom(1) after checkpoint = %v, want ErrCompacted", err)
	}
	// From the oldest surviving record the stream works and reaches the
	// checkpoint record itself (LSN 41).
	buf, count, err := l.ReadFrom(oldest, 1<<20)
	if err != nil {
		t.Fatalf("ReadFrom(%d): %v", oldest, err)
	}
	recs := decodeStream(t, buf)
	if len(recs) != count || count == 0 {
		t.Fatalf("count %d, decoded %d", count, len(recs))
	}
	if last := recs[len(recs)-1]; last.Op != OpCheckpoint || last.Through != 20 {
		t.Fatalf("stream tail = %+v, want the checkpoint fence record", last)
	}
}

func TestReadFromAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(Record{Op: OpInsert, ID: int64(i), Bits: []uint32{9}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, count, err := l2.ReadFrom(1, 1<<20)
	if err != nil || count != 10 {
		t.Fatalf("ReadFrom after reopen = %d records, err %v", count, err)
	}
	if got := l2.OldestLSN(); got != 1 {
		t.Fatalf("OldestLSN after reopen = %d", got)
	}
}

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpInsert, ID: 42, Bits: []uint32{1, 5, 9}},
		{Op: OpDelete, ID: 7},
		{Op: OpCheckpoint, Seq: 3, Through: 99},
	}
	for _, want := range recs {
		got, err := DecodeRecord(EncodeRecord(nil, want))
		if err != nil {
			t.Fatalf("round trip %v: %v", want.Op, err)
		}
		if got.Op != want.Op || got.ID != want.ID || got.Seq != want.Seq || got.Through != want.Through {
			t.Fatalf("round trip %v: got %+v", want.Op, got)
		}
		if len(got.Bits) != len(want.Bits) {
			t.Fatalf("round trip %v: bits %v", want.Op, got.Bits)
		}
	}
}
