// Package wal is the write-ahead log behind the durable serving stack
// (internal/segment, internal/server, cmd/skewsimd). The paper's data
// structure (SkewSearch, §4) is rebuildable from its input, so the log
// persists exactly that input: every Insert/Delete accepted by a
// segmented index is appended here — length-prefixed, CRC-framed
// records (internal/dataio's frame format) — before the in-memory
// structure mutates, and recovery replays the surviving records through
// the same deterministic engines to reconverge on the pre-crash
// candidate sets.
//
// Layout: a log is a directory of segment-rotated files
// wal-<firstLSN>.log, each a sequence of frames; a record's LSN is its
// file's base plus its position, so LSNs survive truncation of whole
// files. Appends reach the kernel before Append returns (a process
// kill never loses an appended record); media durability is governed by
// the SyncPolicy — SyncAlways group-commits an fsync per Commit batch,
// SyncNever leaves flushing to the OS (fsync still runs on rotation,
// checkpoint, and close). Checkpoint records fence the record prefix
// whose effects the caller has made durable elsewhere (frozen-segment
// checkpoint files with their dead-id lists), letting replay skip
// fenced inserts and letting whole fenced log files be deleted.
//
// Torn tails: a crash can cut the final frame short. Open scans every
// file, fails on corruption anywhere but the tail of the last file, and
// truncates a torn tail back to the last clean frame boundary so the
// log is immediately appendable again.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"skewsim/internal/dataio"
	"skewsim/internal/faultinject"
)

// SyncPolicy selects when appended records are fsynced to media.
type SyncPolicy int

const (
	// SyncAlways makes Commit block until an fsync covering the record
	// has completed. Concurrent committers share one fsync (group
	// commit): while a flush is in flight, later appends pile up and the
	// next flush covers them all.
	SyncAlways SyncPolicy = iota
	// SyncNever never fsyncs on the append path: records reach the
	// kernel synchronously (surviving a process crash) but media
	// durability is left to the OS writeback, plus the fsyncs that still
	// run on file rotation, checkpoint, and Close. Survives process
	// kills; an OS crash can lose the recent tail.
	SyncNever
)

func (p SyncPolicy) String() string {
	if p == SyncAlways {
		return "always"
	}
	return "never"
}

// ParseSyncPolicy maps the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never", "os":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always or never)", s)
}

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates the current file once it reaches this size.
	// Defaults to 4 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. The zero value is SyncAlways.
	Sync SyncPolicy
	// Metrics, when non-nil, receives append/fsync counts and the
	// group-commit batch/latency distributions. Share one Metrics
	// across shards.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: closed")

// fileInfo summarizes one closed (no longer appended) log file for the
// truncation decision and the stats adjustments when it is deleted.
type fileInfo struct {
	path string
	base uint64 // LSN of the file's first record
	last uint64 // LSN of the file's last record (0 if empty)
	size int64
}

func (fi fileInfo) recordCount() int64 {
	if fi.last == 0 {
		return 0
	}
	return int64(fi.last - fi.base + 1)
}

// Stats is a point-in-time log size report.
type Stats struct {
	// Records and Bytes count the live (non-truncated) log files,
	// including records replayed from a previous run.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Files is the number of live log files (including the append head).
	Files int `json:"files"`
	// LastLSN is the newest assigned LSN; Durable the newest LSN known
	// fsynced; LastCheckpoint the newest checkpoint fence.
	LastLSN        uint64 `json:"last_lsn"`
	Durable        uint64 `json:"durable_lsn"`
	LastCheckpoint uint64 `json:"last_checkpoint"`
	// TornBytes is how much of a torn tail Open truncated, if any.
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// Log is an append-only write-ahead log over one directory. Safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	fileBase  uint64 // LSN of the current file's first record
	fileSize  int64
	lsn       uint64 // last assigned LSN (0 = none)
	files     []fileInfo
	lastCkpt  uint64
	records   int64
	bytes     int64
	tornBytes int64
	appended  bool // an Append happened since Open (Replay is pre-append only)
	closed    bool
	buf       []byte // frame scratch
	pbuf      []byte // payload scratch

	// Group-commit state, guarded by cmu (never held with mu).
	cmu     sync.Mutex
	ccond   *sync.Cond
	durable uint64
	syncing bool
}

// Open creates or reopens the log directory. Existing files are
// validated frame by frame; corruption in any position other than the
// tail of the newest file is an error, while a torn tail is truncated
// back to the last clean frame boundary. The returned log is positioned
// to append; call Replay before the first Append to stream the
// surviving records.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.ccond = sync.NewCond(&l.cmu)

	paths, err := listLogFiles(dir)
	if err != nil {
		return nil, err
	}
	for i, p := range paths {
		info, err := l.scanFile(p, i == len(paths)-1)
		if err != nil {
			return nil, err
		}
		l.files = append(l.files, info)
		if info.last > l.lsn {
			l.lsn = info.last
		}
	}
	// Reopen the newest file for appending if it has room; otherwise
	// (or with no files at all) start a fresh one.
	if n := len(l.files); n > 0 {
		tail := l.files[n-1]
		st, err := os.Stat(tail.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if st.Size() < opts.SegmentBytes {
			f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f = f
			l.fileBase = tail.base
			l.fileSize = st.Size()
			l.files = l.files[:n-1]
		}
	}
	if l.f == nil {
		if err := l.openNextLocked(); err != nil {
			return nil, err
		}
	}
	l.durable = l.lsn // everything that survived Open's scan is on media as far as we can know
	return l, nil
}

// listLogFiles returns the wal-*.log paths sorted by base LSN.
func listLogFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var paths []string
	for _, e := range ents {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		if _, err := parseBase(name); err != nil {
			return nil, err
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths) // zero-padded fixed-width bases: lexicographic == numeric
	return paths, nil
}

func fileName(base uint64) string { return fmt.Sprintf("wal-%020d.log", base) }

func parseBase(name string) (uint64, error) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	base, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: malformed log file name %q", name)
	}
	return base, nil
}

// scanFile validates every frame of one log file, accumulating stats
// and the truncation-relevant summary. A torn tail is truncated in
// place when tail is true and reported as corruption otherwise.
func (l *Log) scanFile(path string, tail bool) (fileInfo, error) {
	base, err := parseBase(filepath.Base(path))
	if err != nil {
		return fileInfo{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return fileInfo{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info := fileInfo{path: path, base: base}
	fr := dataio.NewFrameReader(f)
	next := base
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, dataio.ErrTornFrame) {
			if !tail {
				return fileInfo{}, fmt.Errorf("wal: corrupt record at %s:%d (not the log tail)", filepath.Base(path), fr.Offset())
			}
			st, serr := f.Stat()
			if serr != nil {
				return fileInfo{}, fmt.Errorf("wal: %w", serr)
			}
			l.tornBytes = st.Size() - fr.Offset()
			if err := os.Truncate(path, fr.Offset()); err != nil {
				return fileInfo{}, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			break
		}
		if err != nil {
			return fileInfo{}, fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			if !tail {
				return fileInfo{}, fmt.Errorf("wal: %s:%d: %w", filepath.Base(path), fr.Offset(), err)
			}
			// A CRC-clean frame with an undecodable payload at the tail
			// is treated like a torn write too: drop it and everything
			// after.
			if err := os.Truncate(path, fr.Offset()-int64(dataio.FrameLen(len(payload)))); err != nil {
				return fileInfo{}, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			break
		}
		if rec.Op == OpCheckpoint && rec.Through > l.lastCkpt {
			l.lastCkpt = rec.Through
		}
		info.last = next
		next++
		l.records++
	}
	info.size = fr.Offset()
	l.bytes += fr.Offset()
	return info, nil
}

// Dir returns the log directory (checkpoint segment files written by
// the serving layer live alongside the log files).
func (l *Log) Dir() string { return l.dir }

// openNextLocked starts a new file whose base is the next LSN. Caller
// holds l.mu (or is Open, pre-publication).
func (l *Log) openNextLocked() error {
	base := l.lsn + 1
	f, err := os.OpenFile(filepath.Join(l.dir, fileName(base)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.fileBase = base
	l.fileSize = 0
	return nil
}

// rotateLocked fsyncs and closes the current file, records its summary,
// and opens the next one. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	closedLast := l.lsn
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.files = append(l.files, fileInfo{
		path: l.f.Name(),
		base: l.fileBase,
		last: closedLast,
		size: l.fileSize,
	})
	l.advanceDurable(closedLast)
	return l.openNextLocked()
}

func (l *Log) advanceDurable(lsn uint64) {
	l.cmu.Lock()
	if lsn > l.durable {
		l.durable = lsn
	}
	l.ccond.Broadcast()
	l.cmu.Unlock()
}

// Append writes one record to the log and returns its LSN. The record
// has reached the kernel when Append returns (it survives a process
// kill); call Commit to wait for media durability under the configured
// policy. Safe for concurrent use; the log order of concurrent appends
// is the order they acquired the internal lock.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

// AppendBatch writes records back to back with a single write call —
// one group-committed unit — and returns the LSN of the last record.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(recs) == 0 {
		return l.lsn, nil
	}
	buf := l.buf[:0]
	for _, rec := range recs {
		l.pbuf = appendRecord(l.pbuf[:0], rec)
		buf = dataio.AppendFrame(buf, l.pbuf)
	}
	l.buf = buf
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.lsn += uint64(len(recs))
	l.records += int64(len(recs))
	l.bytes += int64(len(buf))
	l.fileSize += int64(len(buf))
	l.appended = true
	if m := l.opts.Metrics; m != nil {
		m.Appends.Add(int64(len(recs)))
	}
	if l.fileSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return l.lsn, nil
}

func (l *Log) appendLocked(rec Record) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	l.pbuf = appendRecord(l.pbuf[:0], rec)
	frame := dataio.AppendFrame(l.buf[:0], l.pbuf)
	l.buf = frame
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.lsn++
	l.records++
	l.bytes += int64(len(frame))
	l.fileSize += int64(len(frame))
	l.appended = true
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc()
	}
	if l.fileSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return l.lsn, nil
}

// Commit blocks until the record at lsn is durable under the log's
// sync policy: for SyncAlways it joins the in-flight group fsync (or
// starts one); for SyncNever it returns immediately.
func (l *Log) Commit(lsn uint64) error {
	if l.opts.Sync != SyncAlways {
		return nil
	}
	l.cmu.Lock()
	defer l.cmu.Unlock()
	for l.durable < lsn {
		if l.syncing {
			l.ccond.Wait()
			continue
		}
		l.syncing = true
		start := l.durable
		l.cmu.Unlock()

		l.mu.Lock()
		f := l.f
		target := l.lsn
		closed := l.closed
		l.mu.Unlock()
		var err error
		if closed {
			err = ErrClosed
		} else if err = faultinject.Fire(faultinject.WALFsync); err == nil {
			if m := l.opts.Metrics; m != nil {
				t0 := time.Now()
				err = f.Sync()
				m.FsyncSeconds.ObserveDuration(time.Since(t0))
				m.Fsyncs.Inc()
				if err == nil && target > start {
					m.CommitBatch.Observe(int64(target - start))
				}
			} else {
				err = f.Sync()
			}
		}

		l.cmu.Lock()
		l.syncing = false
		if err == nil && target > l.durable {
			l.durable = target
		}
		l.ccond.Broadcast()
		if err != nil {
			// A rotation may have fsynced and closed the file between
			// the capture and the Sync; if it advanced durability past
			// lsn the commit is satisfied regardless.
			if l.durable >= lsn {
				return nil
			}
			return fmt.Errorf("wal: commit: %w", err)
		}
	}
	return nil
}

// Checkpoint appends a checkpoint record fencing all records with
// LSN <= through (seq names the checkpoint segment file that made them
// durable — the caller guarantees every fenced record's effect is
// durable outside the log), fsyncs it, and deletes every closed log
// file wholly at or below the fence.
func (l *Log) Checkpoint(seq, through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	lsn, err := l.appendLocked(Record{Op: OpCheckpoint, Seq: seq, Through: through})
	if err != nil {
		return err
	}
	// The fence must be durable before anything it covers is deleted.
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.advanceDurable(lsn)
	if through > l.lastCkpt {
		l.lastCkpt = through
	}
	keep := l.files[:0]
	for _, fi := range l.files {
		if fi.last != 0 && fi.last <= l.lastCkpt {
			if err := os.Remove(fi.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncating %s: %w", fi.path, err)
			}
			l.records -= fi.recordCount()
			l.bytes -= fi.size
			continue
		}
		keep = append(keep, fi)
	}
	l.files = keep
	return nil
}

// LastLSN returns the newest assigned LSN (0 before the first append).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// LastCheckpoint returns the newest checkpoint fence: inserts at or
// below it are covered by durable checkpoint segment files.
func (l *Log) LastCheckpoint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCkpt
}

// Stats reports sizes. Bytes/Records count what is on disk now plus
// appends this session, minus truncated files.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Records:        l.records,
		Bytes:          l.bytes,
		Files:          len(l.files) + 1,
		LastLSN:        l.lsn,
		LastCheckpoint: l.lastCkpt,
		TornBytes:      l.tornBytes,
	}
	if l.closed {
		st.Files--
	}
	l.mu.Unlock()
	l.cmu.Lock()
	st.Durable = l.durable
	l.cmu.Unlock()
	return st
}

// Replay streams every surviving record, oldest first, with its LSN.
// Must run before the first Append of this session (replay reads the
// files the current process may truncate or rotate). The callback's
// Record owns its Bits. Stops early on callback error.
func (l *Log) Replay(fn func(lsn uint64, rec Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.appended {
		l.mu.Unlock()
		return errors.New("wal: Replay must run before the first Append")
	}
	files := make([]fileInfo, 0, len(l.files)+1)
	files = append(files, l.files...)
	files = append(files, fileInfo{path: l.f.Name(), base: l.fileBase})
	l.mu.Unlock()

	for _, fi := range files {
		if err := replayFile(fi, fn); err != nil {
			return err
		}
	}
	return nil
}

func replayFile(fi fileInfo, fn func(lsn uint64, rec Record) error) error {
	f, err := os.Open(fi.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fr := dataio.NewFrameReader(f)
	lsn := fi.base
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Open already validated and truncated; anything here means
			// the files changed underneath us.
			return fmt.Errorf("wal: replaying %s: %w", filepath.Base(fi.path), err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", filepath.Base(fi.path), err)
		}
		if err := fn(lsn, rec); err != nil {
			return err
		}
		lsn++
	}
}

// Close fsyncs and closes the log. Further appends fail with ErrClosed.
// Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.advanceDurable(l.lsn)
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
