package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	var lastLSN uint64
	if err := l.Replay(func(lsn uint64, rec Record) error {
		if lsn != lastLSN+1 {
			t.Fatalf("replay LSN %d after %d: not sequential", lsn, lastLSN)
		}
		lastLSN = lsn
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func insertRec(id int64, bits ...uint32) Record {
	return Record{Op: OpInsert, ID: id, Bits: bits}
}

// TestRoundTrip appends a mix of record types across both sync
// policies and checks a reopened log replays them verbatim, in order,
// with sequential LSNs.
func TestRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: policy})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			recs := []Record{
				insertRec(0, 1, 5, 9),
				insertRec(1), // empty vector
				{Op: OpDelete, ID: 0},
				{Op: OpCheckpoint, Seq: 1, Through: 2},
				insertRec(7, 42),
			}
			for _, rec := range recs {
				lsn, err := l.Append(rec)
				if err != nil {
					t.Fatalf("Append: %v", err)
				}
				if err := l.Commit(lsn); err != nil {
					t.Fatalf("Commit: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			r, err := Open(dir, Options{Sync: policy})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer r.Close()
			got := collect(t, r)
			if len(got) != len(recs) {
				t.Fatalf("replayed %d records, want %d", len(got), len(recs))
			}
			for i, rec := range recs {
				g := got[i]
				if g.Op != rec.Op || g.ID != rec.ID || g.Seq != rec.Seq || g.Through != rec.Through {
					t.Fatalf("record %d: got %+v want %+v", i, g, rec)
				}
				if len(g.Bits) != len(rec.Bits) {
					t.Fatalf("record %d: got %d bits want %d", i, len(g.Bits), len(rec.Bits))
				}
				for j := range rec.Bits {
					if g.Bits[j] != rec.Bits[j] {
						t.Fatalf("record %d bit %d: got %d want %d", i, j, g.Bits[j], rec.Bits[j])
					}
				}
			}
			if r.LastLSN() != uint64(len(recs)) {
				t.Fatalf("LastLSN = %d, want %d", r.LastLSN(), len(recs))
			}
			if r.LastCheckpoint() != 2 {
				t.Fatalf("LastCheckpoint = %d, want 2", r.LastCheckpoint())
			}
		})
	}
}

// TestRotationAndTruncation forces tiny segments, fences a prefix
// containing inserts and a delete, and checks (a) wholly fenced files
// are deleted, (b) every record above the fence survives with its
// original LSN, (c) the fence survives reopen.
func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// ~21 bytes per insert frame: a few per file. LSNs 1..20 are
	// inserts of ids 0..19, LSN 21 the delete, 22..41 ids 20..39.
	for id := int64(0); id < 20; id++ {
		if _, err := l.Append(insertRec(id, uint32(id))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := l.Append(Record{Op: OpDelete, ID: 3}); err != nil {
		t.Fatalf("Append delete: %v", err)
	}
	for id := int64(20); id < 40; id++ {
		if _, err := l.Append(insertRec(id, uint32(id))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := logFileCount(t, dir)
	if before < 3 {
		t.Fatalf("expected several rotated files, got %d", before)
	}
	// Fence through LSN 21: the caller (the serving layer) guarantees
	// the fenced inserts and the delete are durable in checkpoint
	// segment files, so their log files may go.
	if err := l.Checkpoint(1, 21); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after := logFileCount(t, dir)
	if after >= before {
		t.Fatalf("checkpoint truncated nothing: %d files before, %d after", before, after)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.LastCheckpoint() != 21 {
		t.Fatalf("LastCheckpoint = %d, want 21", r.LastCheckpoint())
	}
	surviving := make(map[int64]bool)
	if err := r.Replay(func(lsn uint64, rec Record) error {
		if rec.Op == OpInsert {
			if lsn != uint64(rec.ID)+1 && lsn != uint64(rec.ID)+2 {
				return fmt.Errorf("insert id %d replayed at lsn %d", rec.ID, lsn)
			}
			surviving[rec.ID] = true
		}
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Everything above the fence (ids 20..39) must have survived; the
	// file straddling the fence may keep a few fenced records too.
	for id := int64(20); id < 40; id++ {
		if !surviving[id] {
			t.Fatalf("insert id %d (above the fence) was truncated", id)
		}
	}
	// 41 insert/delete records plus the checkpoint record itself.
	if r.LastLSN() != 42 {
		t.Fatalf("LastLSN = %d, want 42", r.LastLSN())
	}
}

func logFileCount(t *testing.T, dir string) int {
	t.Helper()
	paths, err := listLogFiles(dir)
	if err != nil {
		t.Fatalf("listLogFiles: %v", err)
	}
	return len(paths)
}

// TestTornTail cuts the final file at every byte boundary inside its
// last frame and checks Open truncates back to the last clean record
// and the log accepts appends again.
func TestTornTail(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for id := int64(0); id < 5; id++ {
			if _, err := l.Append(insertRec(id, uint32(id), uint32(id+100))); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		paths, err := listLogFiles(dir)
		if err != nil || len(paths) != 1 {
			t.Fatalf("want 1 log file, got %v (%v)", paths, err)
		}
		return dir, paths[0]
	}

	dir0, path0 := build(t)
	full, err := os.ReadFile(path0)
	if err != nil {
		t.Fatal(err)
	}
	_ = dir0
	frameLen := len(full) / 5
	if len(full)%5 != 0 {
		t.Fatalf("unexpected log size %d", len(full))
	}
	for cut := len(full) - frameLen + 1; cut < len(full); cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir, path := build(t)
			if err := os.Truncate(path, int64(cut)); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatalf("Open after torn tail: %v", err)
			}
			defer l.Close()
			if st := l.Stats(); st.TornBytes == 0 {
				t.Fatal("expected TornBytes > 0")
			}
			got := collect(t, l)
			if len(got) != 4 {
				t.Fatalf("replayed %d records after torn tail, want 4", len(got))
			}
			if l.LastLSN() != 4 {
				t.Fatalf("LastLSN = %d, want 4", l.LastLSN())
			}
			if lsn, err := l.Append(insertRec(99, 1)); err != nil || lsn != 5 {
				t.Fatalf("Append after truncation: lsn %d err %v", lsn, err)
			}
		})
	}

	// A flipped byte mid-file (not the tail frame) must fail Open on a
	// single-file log only if it corrupts a non-tail file; within the
	// tail file it is treated as torn and truncated there.
	t.Run("midfile-corruption-truncates-rest", func(t *testing.T) {
		dir, path := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[frameLen*2+10] ^= 0xff // inside the third frame's payload
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		if got := collect(t, l); len(got) != 2 {
			t.Fatalf("replayed %d records, want 2 (everything after the corrupt frame dropped)", len(got))
		}
	})
}

// TestCorruptionInOldFileFails flips a byte in a rotated (non-tail)
// file: that is real corruption, not a torn tail, and Open must refuse.
func TestCorruptionInOldFileFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for id := int64(0); id < 30; id++ {
		if _, err := l.Append(insertRec(id, uint32(id))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	paths, err := listLogFiles(dir)
	if err != nil || len(paths) < 2 {
		t.Fatalf("want >= 2 files, got %v (%v)", paths, err)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever}); err == nil {
		t.Fatal("Open accepted corruption in a non-tail file")
	}
}

// TestGroupCommit hammers Append+Commit from many goroutines under
// SyncAlways and checks every record survives reopen — the group-commit
// path must not lose or reorder acknowledged records.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				lsn, err := l.Append(insertRec(id, uint32(id)))
				if err == nil {
					err = l.Commit(lsn)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	seen := make(map[int64]bool)
	for _, rec := range collect(t, r) {
		if rec.Op != OpInsert {
			t.Fatalf("unexpected %v record", rec.Op)
		}
		if seen[rec.ID] {
			t.Fatalf("id %d replayed twice", rec.ID)
		}
		seen[rec.ID] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(seen), writers*perWriter)
	}
}

// TestAppendBatch checks the single-write batch path interleaves
// correctly with single appends and survives reopen.
func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(insertRec(0, 7)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	batch := []Record{insertRec(1, 8), insertRec(2, 9), {Op: OpDelete, ID: 0}}
	lsn, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if lsn != 4 {
		t.Fatalf("AppendBatch last LSN = %d, want 4", lsn)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	got := collect(t, r)
	if len(got) != 4 || got[3].Op != OpDelete || got[3].ID != 0 {
		t.Fatalf("unexpected replay %+v", got)
	}
}

// TestReplayAfterAppendFails pins the pre-append contract.
func TestReplayAfterAppendFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(insertRec(1, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Replay(func(uint64, Record) error { return nil }); err == nil {
		t.Fatal("Replay after Append must fail")
	}
}

// TestClosed pins the ErrClosed surface.
func TestClosed(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(insertRec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Checkpoint(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
}

// TestIgnoresForeignFiles: checkpoint segment files and other artifacts
// share the directory and must not confuse the file scan.
func TestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ckpt-00000001.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(insertRec(1, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
}
