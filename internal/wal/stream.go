package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"skewsim/internal/dataio"
)

// Frame streaming: the replication feed (internal/server's
// GET /v1/replica/wal) ships a log's records to followers as the same
// CRC-framed bytes the log itself stores. ReadFrom re-frames the
// records at or above a requested LSN into one contiguous buffer; the
// follower walks it with dataio.NewFrameReader and DecodeRecord and
// applies each record through the idempotent recovery path. LSNs in the
// buffer are contiguous (checkpoint records are included — the follower
// skips applying them but still advances its cursor), so a response's
// records carry LSNs from, from+1, ..., from+count-1.

// ErrCompacted reports a ReadFrom position that checkpoint truncation
// has already deleted: the records below the oldest live log file are
// durable only in checkpoint segment files now, so a follower that far
// behind must bootstrap from a checkpoint snapshot instead of the log.
var ErrCompacted = errors.New("wal: requested lsn truncated by checkpoint")

// OldestLSN returns the lowest LSN still readable from the live log
// files. A ReadFrom below it fails ErrCompacted; an empty or fully
// truncated log reports LastLSN+1 (the next record to be appended).
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, fi := range l.files {
		if fi.last != 0 {
			return fi.base
		}
	}
	return l.fileBase
}

// ReadFrom reads records with LSN >= from into one buffer of CRC
// frames (payloads in EncodeRecord form), stopping after the frame that
// carries the buffer past maxBytes. It returns the buffer and the
// record count — the records are LSNs from..from+count-1. A from of 0
// reads from the beginning; reading at the log head returns (nil, 0,
// nil). Safe against concurrent appends, rotation, and checkpoint
// truncation: a torn tail on the append head ends the read cleanly
// (the frame completes in a later call), and a file deleted by a
// concurrent checkpoint surfaces as ErrCompacted.
func (l *Log) ReadFrom(from uint64, maxBytes int) ([]byte, int, error) {
	if from == 0 {
		from = 1
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if from > l.lsn {
		l.mu.Unlock()
		return nil, 0, nil
	}
	oldest := l.fileBase
	for _, fi := range l.files {
		if fi.last != 0 {
			oldest = fi.base
			break
		}
	}
	if from < oldest {
		l.mu.Unlock()
		return nil, 0, fmt.Errorf("%w (oldest %d, requested %d)", ErrCompacted, oldest, from)
	}
	// Snapshot the files that can hold LSNs >= from. The head file is
	// always last; it may gain frames (or rotate into a closed file)
	// while we read — both leave the path and the frames we want intact.
	type span struct {
		path string
		base uint64
	}
	var spans []span
	for _, fi := range l.files {
		if fi.last != 0 && fi.last >= from {
			spans = append(spans, span{fi.path, fi.base})
		}
	}
	spans = append(spans, span{l.f.Name(), l.fileBase})
	l.mu.Unlock()

	var buf []byte
	count := 0
	for si, sp := range spans {
		head := si == len(spans)-1
		f, err := os.Open(sp.path)
		if err != nil {
			if os.IsNotExist(err) {
				// A checkpoint deleted the file between the snapshot and
				// the open; everything it held is fenced now.
				return nil, 0, fmt.Errorf("%w (file %s deleted mid-read)", ErrCompacted, filepath.Base(sp.path))
			}
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		fr := dataio.NewFrameReader(f)
		lsn := sp.base
		for {
			payload, err := fr.Next()
			if err == io.EOF {
				break
			}
			if errors.Is(err, dataio.ErrTornFrame) {
				if head {
					break // a frame mid-write at the append head: next call gets it
				}
				f.Close()
				return nil, 0, fmt.Errorf("wal: streaming %s: %w", filepath.Base(sp.path), err)
			}
			if err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("wal: streaming %s: %w", filepath.Base(sp.path), err)
			}
			if lsn >= from {
				buf = dataio.AppendFrame(buf, payload)
				count++
				if len(buf) >= maxBytes {
					f.Close()
					return buf, count, nil
				}
			}
			lsn++
		}
		f.Close()
	}
	return buf, count, nil
}
