package wal

import (
	"sync/atomic"
	"testing"
)

// BenchmarkWALAppend measures the raw append path (frame encode + one
// write syscall) without fsync — the per-operation cost every durable
// insert pays on top of the in-memory index work.
func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer l.Close()
	bits := []uint32{3, 17, 42, 99, 1024, 4096, 65535}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(Record{Op: OpInsert, ID: int64(i), Bits: bits}); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
}

// BenchmarkWALAppendBatch measures the batch path cmd/skewsimd's
// InsertBatch rides: 64 records framed into one write call.
func BenchmarkWALAppendBatch(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer l.Close()
	bits := []uint32{3, 17, 42, 99, 1024, 4096, 65535}
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{Op: OpInsert, ID: int64(i), Bits: bits}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendBatch(recs); err != nil {
			b.Fatalf("AppendBatch: %v", err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(64), "recs/op")
	}
}

// BenchmarkWALGroupCommit measures fsync-per-commit throughput with
// concurrent committers sharing group fsyncs (RunParallel saturates the
// group-commit window, so ns/op amortizes the fsync across the batch).
func BenchmarkWALGroupCommit(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer l.Close()
	bits := []uint32{3, 17, 42, 99}
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lsn, err := l.Append(Record{Op: OpInsert, ID: id.Add(1), Bits: bits})
			if err == nil {
				err = l.Commit(lsn)
			}
			if err != nil {
				b.Errorf("append/commit: %v", err)
				return
			}
		}
	})
}
