package wal

import (
	"skewsim/internal/obs"
)

// Metrics is the log's instrument set. Share one Metrics across every
// shard's log (the counters aggregate atomically); attach via
// Options.Metrics. Nil disables instrumentation.
//
// Log sizes (bytes, file count, durable LSN) are not instruments here —
// Stats() already reports them point-in-time, so the serving layer
// exposes them as scrape-time GaugeFuncs over Stats().
type Metrics struct {
	// Appends counts records appended (inserts, deletes, checkpoints);
	// Fsyncs counts physical fsync calls issued by the group-commit
	// path. Appends/Fsyncs is the realized group-commit amortization.
	Appends *obs.Counter
	Fsyncs  *obs.Counter
	// FsyncSeconds is the duration of each group-commit fsync (the
	// stall every synchronous writer in the batch shares).
	FsyncSeconds *obs.Histogram
	// CommitBatch is the number of records each group-commit fsync made
	// durable — the batch-size distribution. Under light load it sits
	// at 1; a rising tail is group commit absorbing a write burst.
	CommitBatch *obs.Histogram
}

// NewMetrics registers the WAL instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Appends: reg.Counter("skewsim_wal_appends_total", "WAL records appended."),
		Fsyncs:  reg.Counter("skewsim_wal_fsyncs_total", "Group-commit fsync calls issued."),
		FsyncSeconds: reg.Histogram("skewsim_wal_fsync_seconds", "Duration of one group-commit fsync.",
			obs.HistogramOpts{MinPow: 12, MaxPow: 34, Scale: 1e-9}), // ~4µs .. ~17s
		CommitBatch: reg.Histogram("skewsim_wal_commit_batch_records", "Records made durable per group-commit fsync.",
			obs.HistogramOpts{MinPow: 0, MaxPow: 14}), // 1 .. 16384
	}
}
