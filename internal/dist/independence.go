package dist

import (
	"cmp"
	"math"
	"slices"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// IndependenceRatio measures the data's deviation from the product model
// (the Table 1 measurement): it samples `samples` uniform random subsets
// I ⊆ [dim] of size setSize and returns
//
//	Σ_I observed(I) / Σ_I predicted(I)
//
// where observed(I) is the fraction of vectors with 1s on all of I and
// predicted(I) = Π_{i∈I} f_i is the co-occurrence rate independence would
// imply from the empirical item frequencies f. The ratio is ≈ 1 on truly
// independent data and grows with positive correlation. Returns 1 when
// the predicted mass of every sampled subset is zero (no evidence either
// way, e.g. empty data).
func IndependenceRatio(data []bitvec.Vector, dim, setSize, samples int, seed uint64) float64 {
	return independenceRatio(data, dim, setSize, samples, seed, false)
}

// IndependenceRatioWeighted is IndependenceRatio with subsets drawn with
// probability proportional to item mass (frequency) instead of uniformly,
// so frequent items dominate the measurement as they do in real
// co-occurrence counts — the sampling Table 1's analog calibration uses.
// Items whose predicted co-occurrence cannot be resolved at this dataset
// size (f_i < n^(-1/setSize), i.e. expected subset count below one even
// in the best case) are excluded: their observed counts are almost surely
// zero and would only add noise, never signal.
func IndependenceRatioWeighted(data []bitvec.Vector, dim, setSize, samples int, seed uint64) float64 {
	return independenceRatio(data, dim, setSize, samples, seed, true)
}

func independenceRatio(data []bitvec.Vector, dim, setSize, samples int, seed uint64, weighted bool) float64 {
	if len(data) == 0 || dim < setSize || setSize < 1 || samples < 1 {
		return 1
	}
	freqs := EstimateFrequencies(data, dim)
	postings := buildPostings(data, dim)
	positive := 0
	for _, f := range freqs {
		if f > 0 {
			positive++
		}
	}
	if positive < setSize {
		return 1
	}

	// Weighted mode draws from the observable head of the spectrum.
	var eligible []int
	var cum []float64 // cumulative mass over eligible, for weighted draws
	if weighted {
		eligible = observableItems(freqs, len(data), setSize)
		if len(eligible) < setSize {
			return 1
		}
		cum = make([]float64, len(eligible))
		acc := 0.0
		for k, i := range eligible {
			acc += freqs[i]
			cum[k] = acc
		}
	}

	rng := hashing.NewSplitMix64(seed)
	draw := func() int {
		if !weighted {
			return int(rng.NextBelow(uint64(dim)))
		}
		u := rng.NextUnit() * cum[len(cum)-1]
		k, _ := slices.BinarySearch(cum, u)
		return eligible[k]
	}

	subset := make([]int, 0, setSize)
	var obsSum, predSum float64
	for s := 0; s < samples; s++ {
		subset = subset[:0]
		for len(subset) < setSize {
			i := draw()
			dup := false
			for _, j := range subset {
				if j == i {
					dup = true
					break
				}
			}
			if !dup {
				subset = append(subset, i)
			}
		}
		pred := 1.0
		for _, i := range subset {
			pred *= freqs[i]
		}
		predSum += pred
		obsSum += float64(coOccurrences(postings, subset)) / float64(len(data))
	}
	if predSum == 0 {
		return 1
	}
	return obsSum / predSum
}

// observableItems returns the items whose frequency clears the
// resolvability floor n^(-1/setSize) (a size-setSize subset of such items
// has predicted count ≥ 1 under independence), padded with the most
// frequent remaining items up to a minimum pool of 8 so tiny datasets
// still get a measurement. Sorted by decreasing frequency.
func observableItems(freqs []float64, n, setSize int) []int {
	order := make([]int, 0, len(freqs))
	for i, f := range freqs {
		if f > 0 {
			order = append(order, i)
		}
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(freqs[b], freqs[a]) })
	floor := math.Pow(float64(n), -1/float64(setSize))
	cut := 0
	for cut < len(order) && freqs[order[cut]] >= floor {
		cut++
	}
	const minPool = 8
	if cut < minPool {
		cut = minPool
		if cut > len(order) {
			cut = len(order)
		}
	}
	return order[:cut]
}

// buildPostings returns, per item, the sorted list of vector ids
// containing it.
func buildPostings(data []bitvec.Vector, dim int) [][]int32 {
	postings := make([][]int32, dim)
	for id, x := range data {
		for _, b := range x.Bits() {
			if int(b) < dim {
				postings[b] = append(postings[b], int32(id))
			}
		}
	}
	return postings
}

// coOccurrences counts vectors containing every item of the subset, by
// scanning the shortest posting list and probing the others.
func coOccurrences(postings [][]int32, subset []int) int {
	shortest := subset[0]
	for _, i := range subset[1:] {
		if len(postings[i]) < len(postings[shortest]) {
			shortest = i
		}
	}
	count := 0
	for _, id := range postings[shortest] {
		all := true
		for _, i := range subset {
			if i == shortest {
				continue
			}
			if !containsID(postings[i], id) {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count
}

// containsID reports whether the sorted posting list holds id.
func containsID(list []int32, id int32) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == id
}
