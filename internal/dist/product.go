// Package dist implements the paper's probabilistic data model (§2): the
// product distribution D[p1..pd] over subsets of a universe of d items,
// where item i is included independently with probability p_i.
//
// The package provides
//
//   - Product, a validated distribution with the sampling primitives the
//     workload generators need (independent draws, the correlated draws
//     q ~ D_α(x) of §6, and the derived model constants C, Σp, E[B]);
//   - the item-frequency profiles the experiments instantiate (Uniform,
//     Zipf, Harmonic, TwoBlock, Fig1Profile, PiecewiseZipf);
//   - empirical estimation from data (§9: EstimateProduct,
//     EstimateFrequencies, SortedFrequencies);
//   - independence diagnostics (IndependenceRatio and its mass-weighted
//     variant), the measurement behind the paper's Table 1.
package dist

import (
	"errors"
	"fmt"
	"math"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

// Product is the product distribution D[p1..pd]: a vector x ~ D sets bit
// i independently with probability p_i. Immutable after construction.
type Product struct {
	probs []float64
	sum   float64 // Σ p_i
	sumSq float64 // Σ p_i²
	runs  []probRun
}

// probRun is a maximal run [start, end) of equal item probability, the
// unit over which sampling takes geometric skips. Profiles are piecewise
// (uniform blocks, two-block mixes), so runs are few and sampling costs
// O(runs + |x|) instead of O(d).
type probRun struct {
	start, end int
	p          float64
}

// NewProduct validates the probability vector and builds a distribution.
// Each p_i must lie in [0, 1]; the dimension must be at least 1.
func NewProduct(probs []float64) (*Product, error) {
	if len(probs) == 0 {
		return nil, errors.New("dist: empty probability vector")
	}
	d := &Product{probs: make([]float64, len(probs))}
	copy(d.probs, probs)
	for i, p := range d.probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("dist: probs[%d] = %v outside [0, 1]", i, p)
		}
		d.sum += p
		d.sumSq += p * p
	}
	start := 0
	for i := 1; i <= len(d.probs); i++ {
		if i == len(d.probs) || d.probs[i] != d.probs[start] {
			d.runs = append(d.runs, probRun{start: start, end: i, p: d.probs[start]})
			start = i
		}
	}
	return d, nil
}

// MustProduct is NewProduct panicking on error, for tests and literals.
func MustProduct(probs []float64) *Product {
	d, err := NewProduct(probs)
	if err != nil {
		panic(err)
	}
	return d
}

// Dim returns the universe size d.
func (d *Product) Dim() int { return len(d.probs) }

// P returns the inclusion probability of item i.
func (d *Product) P(i int) float64 { return d.probs[i] }

// Probs returns a copy of the probability vector (callers may retain it).
func (d *Product) Probs() []float64 {
	out := make([]float64, len(d.probs))
	copy(out, d.probs)
	return out
}

// ExpectedSize returns E[|x|] = Σ p_i, the paper's C·log n.
func (d *Product) ExpectedSize() float64 { return d.sum }

// C returns the model constant C = Σp / ln n for dataset size n
// (the paper parameterizes Σ p_i = C·log n). Returns 0 for n < 2.
func (d *Product) C(n int) float64 {
	if n < 2 {
		return 0
	}
	return d.sum / math.Log(float64(n))
}

// ExpectedBraunBlanquet returns the expected Braun-Blanquet similarity of
// two independent draws, b2 ≈ E[|x∩y|]/E[max(|x|,|y|)] = Σp² / Σp — the
// "far" similarity the Chosen Path baseline must be configured with.
func (d *Product) ExpectedBraunBlanquet() float64 {
	if d.sum == 0 {
		return 0
	}
	return d.sumSq / d.sum
}

// ExpectedCorrelatedBraunBlanquet returns the expected similarity of a
// planted pair (x, q) with q ~ D_α(x): b1 ≈ α + (1−α)·b2.
func (d *Product) ExpectedCorrelatedBraunBlanquet(alpha float64) float64 {
	return alpha + (1-alpha)*d.ExpectedBraunBlanquet()
}

// ConditionalProbs returns the §6 conditional probabilities
// p̂_i = Pr[q_i = 1 | x_i = 1] = p_i(1−α) + α for q ~ D_α(x).
func (d *Product) ConditionalProbs(alpha float64) []float64 {
	out := make([]float64, len(d.probs))
	for i, p := range d.probs {
		out[i] = p*(1-alpha) + alpha
	}
	return out
}

// Sample draws one vector x ~ D.
func (d *Product) Sample(rng *hashing.SplitMix64) bitvec.Vector {
	bits := make([]uint32, 0, int(d.sum)+4)
	for _, r := range d.runs {
		bits = appendRunSample(rng, bits, r.start, r.end, r.p)
	}
	return bitvec.FromSorted(bits)
}

// SampleN draws n independent vectors.
func (d *Product) SampleN(rng *hashing.SplitMix64, n int) []bitvec.Vector {
	out := make([]bitvec.Vector, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// SampleCorrelated draws q ~ D_α(x), the planted-query distribution of
// Theorem 1: independently per item, q_i = x_i with probability α and a
// fresh Bernoulli(p_i) draw otherwise. Items of x outside [0, d) are kept
// with probability α (they have model probability 0).
func (d *Product) SampleCorrelated(rng *hashing.SplitMix64, x bitvec.Vector, alpha float64) bitvec.Vector {
	// Bits of x survive with probability α + (1−α)p_i.
	kept := make([]uint32, 0, x.Len())
	for _, b := range x.Bits() {
		p := 0.0
		if int(b) < len(d.probs) {
			p = d.probs[b]
		}
		if rng.NextUnit() < alpha+(1-alpha)*p {
			kept = append(kept, b)
		}
	}
	// Bits outside x appear with probability (1−α)p_i.
	noise := make([]uint32, 0, 8)
	for _, r := range d.runs {
		noise = appendRunSampleExcluding(rng, noise, r.start, r.end, (1-alpha)*r.p, x)
	}
	return bitvec.FromSorted(mergeSorted(kept, noise))
}

// appendRunSample appends a Bernoulli(p) sample of indices in [start, end)
// to bits, using geometric skips so the cost is proportional to the number
// of successes rather than the run length.
func appendRunSample(rng *hashing.SplitMix64, bits []uint32, start, end int, p float64) []uint32 {
	switch {
	case p <= 0:
		return bits
	case p >= 1:
		for i := start; i < end; i++ {
			bits = append(bits, uint32(i))
		}
		return bits
	}
	logQ := math.Log1p(-p) // log(1-p) < 0
	for i := start; ; {
		u := rng.NextUnit()
		for u == 0 {
			u = rng.NextUnit()
		}
		i += int(math.Log(u) / logQ)
		if i >= end {
			return bits
		}
		bits = append(bits, uint32(i))
		i++
	}
}

// appendRunSampleExcluding is appendRunSample skipping indices present in x.
func appendRunSampleExcluding(rng *hashing.SplitMix64, bits []uint32, start, end int, p float64, x bitvec.Vector) []uint32 {
	switch {
	case p <= 0:
		return bits
	case p >= 1:
		for i := start; i < end; i++ {
			if !x.Contains(uint32(i)) {
				bits = append(bits, uint32(i))
			}
		}
		return bits
	}
	logQ := math.Log1p(-p)
	for i := start; ; {
		u := rng.NextUnit()
		for u == 0 {
			u = rng.NextUnit()
		}
		i += int(math.Log(u) / logQ)
		if i >= end {
			return bits
		}
		if !x.Contains(uint32(i)) {
			bits = append(bits, uint32(i))
		}
		i++
	}
}

// mergeSorted merges two sorted disjoint index slices.
func mergeSorted(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
