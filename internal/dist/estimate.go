package dist

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"skewsim/internal/bitvec"
)

// EstimateFrequencies counts the empirical item frequencies of the data:
// out[i] is the fraction of vectors containing item i. dim = 0 infers the
// dimension as max bit + 1 over the data; bits at or above dim are
// ignored. Returns nil for empty data with dim 0.
func EstimateFrequencies(data []bitvec.Vector, dim int) []float64 {
	if dim == 0 {
		for _, x := range data {
			if mb, ok := x.MaxBit(); ok && int(mb)+1 > dim {
				dim = int(mb) + 1
			}
		}
	}
	if dim == 0 {
		return nil
	}
	out := make([]float64, dim)
	if len(data) == 0 {
		return out
	}
	for _, x := range data {
		for _, b := range x.Bits() {
			if int(b) < dim {
				out[b]++
			}
		}
	}
	inv := 1 / float64(len(data))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// EstimateProduct fits a product distribution to the data by frequency
// counting — the §9 strategy ("one can estimate each p_i to very high
// precision by counting the occurrences in the dataset itself"). dim = 0
// infers the dimension from the data.
func EstimateProduct(data []bitvec.Vector, dim int) (*Product, error) {
	if len(data) == 0 {
		return nil, errors.New("dist: cannot estimate from empty data")
	}
	freqs := EstimateFrequencies(data, dim)
	if len(freqs) == 0 {
		return nil, fmt.Errorf("dist: data has no bits and dim = %d", dim)
	}
	return NewProduct(freqs)
}

// SortedFrequencies returns a copy of probs sorted in decreasing order —
// the frequency spectrum by rank, as plotted in Figure 2.
func SortedFrequencies(probs []float64) []float64 {
	out := make([]float64, len(probs))
	copy(out, probs)
	slices.SortFunc(out, func(a, b float64) int { return cmp.Compare(b, a) })
	return out
}
