package dist

import (
	"math"
	"testing"

	"skewsim/internal/bitvec"
	"skewsim/internal/hashing"
)

func TestNewProductValidation(t *testing.T) {
	if _, err := NewProduct(nil); err == nil {
		t.Error("empty vector accepted")
	}
	for _, bad := range [][]float64{{-0.1}, {1.1}, {0.5, math.NaN()}} {
		if _, err := NewProduct(bad); err == nil {
			t.Errorf("invalid probs %v accepted", bad)
		}
	}
	d, err := NewProduct([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 3 || d.P(1) != 0.5 {
		t.Errorf("Dim/P wrong: %d, %v", d.Dim(), d.P(1))
	}
}

func TestProductIsImmutable(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3}
	d := MustProduct(probs)
	probs[0] = 0.9
	if d.P(0) != 0.1 {
		t.Error("NewProduct retained the caller's slice")
	}
	d.Probs()[1] = 0.9
	if d.P(1) != 0.2 {
		t.Error("Probs() exposed the internal slice")
	}
}

func TestProductMoments(t *testing.T) {
	d := MustProduct([]float64{0.5, 0.25, 0.25})
	if got := d.ExpectedSize(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ExpectedSize = %v", got)
	}
	// Σp² = 0.25 + 0.0625 + 0.0625 = 0.375; b2 = 0.375.
	if got := d.ExpectedBraunBlanquet(); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("ExpectedBraunBlanquet = %v", got)
	}
	alpha := 0.5
	want := alpha + (1-alpha)*0.375
	if got := d.ExpectedCorrelatedBraunBlanquet(alpha); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedCorrelatedBraunBlanquet = %v, want %v", got, want)
	}
	if got := d.C(100); math.Abs(got-1/math.Log(100)) > 1e-12 {
		t.Errorf("C(100) = %v", got)
	}
	if got := d.C(1); got != 0 {
		t.Errorf("C(1) = %v, want 0", got)
	}
	phat := d.ConditionalProbs(alpha)
	for i, p := range []float64{0.5, 0.25, 0.25} {
		want := p*(1-alpha) + alpha
		if math.Abs(phat[i]-want) > 1e-12 {
			t.Errorf("phat[%d] = %v, want %v", i, phat[i], want)
		}
	}
}

// profilesInRange checks every documented profile stays in [0, 1] and is
// sorted (non-increasing) where the spectrum semantics promise it.
func TestProfilesInRangeAndSorted(t *testing.T) {
	cases := []struct {
		name   string
		probs  []float64
		sorted bool
	}{
		{"Uniform", Uniform(500, 0.3), true},
		{"Zipf", Zipf(500, 1, 0.7), true},
		{"Harmonic", Harmonic(500), true},
		{"TwoBlock", TwoBlock(100, 0.4, 400, 0.01), true},
		{"Fig1Profile", Fig1Profile(501, 0.25), true},
		{"PiecewiseZipf", PiecewiseZipf(500, 0.5, []PiecewiseZipfSegment{
			{FracEnd: 0.3, S: 0.4}, {FracEnd: 1, S: 1.5},
		}), true},
		{"PiecewiseZipfDefault", PiecewiseZipf(200, 0.9, nil), true},
	}
	for _, c := range cases {
		for i, p := range c.probs {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("%s[%d] = %v outside [0, 1]", c.name, i, p)
			}
			if c.sorted && i > 0 && p > c.probs[i-1]+1e-15 {
				t.Fatalf("%s increases at %d: %v > %v", c.name, i, p, c.probs[i-1])
			}
		}
		if _, err := NewProduct(c.probs); err != nil {
			t.Errorf("%s not a valid Product: %v", c.name, err)
		}
	}
}

func TestFig1ProfileShape(t *testing.T) {
	probs := Fig1Profile(900, 0.24)
	if probs[0] != 0.24 || probs[449] != 0.24 {
		t.Error("head half should be p")
	}
	if probs[450] != 0.03 || probs[899] != 0.03 {
		t.Error("tail half should be p/8")
	}
	// Σp ≈ 121.5, the constant core tests rely on.
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-121.5) > 1e-9 {
		t.Errorf("mass %v, want 121.5", sum)
	}
}

func TestPiecewiseZipfContinuity(t *testing.T) {
	probs := PiecewiseZipf(1000, 0.5, []PiecewiseZipfSegment{
		{FracEnd: 0.4, S: 0.5}, {FracEnd: 1, S: 1.3},
	})
	if probs[0] != 0.5 {
		t.Errorf("head = %v, want pMax", probs[0])
	}
	// The second segment starts at the value the first ended on.
	if probs[400] != probs[399] {
		t.Errorf("discontinuity at segment boundary: %v vs %v", probs[400], probs[399])
	}
}

func TestClamp(t *testing.T) {
	got := Clamp([]float64{-0.5, 0.3, 1.7}, 0.1)
	want := []float64{0.1, 0.3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Clamp[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSampleMarginals: the geometric-skip sampler must reproduce the item
// marginals, including across run boundaries and for p ∈ {0, 1}.
func TestSampleMarginals(t *testing.T) {
	d := MustProduct([]float64{1, 0.5, 0.5, 0.5, 0, 0.05, 0.05, 0.05, 0.05})
	rng := hashing.NewSplitMix64(42)
	const n = 20000
	counts := make([]int, d.Dim())
	for s := 0; s < n; s++ {
		x := d.Sample(rng)
		prev := int64(-1)
		for _, b := range x.Bits() {
			if int64(b) <= prev {
				t.Fatal("sample bits not sorted distinct")
			}
			prev = int64(b)
			counts[b]++
		}
	}
	for i := 0; i < d.Dim(); i++ {
		got := float64(counts[i]) / n
		tol := 4*math.Sqrt(d.P(i)*(1-d.P(i))/n) + 1e-9
		if math.Abs(got-d.P(i)) > tol {
			t.Errorf("item %d: marginal %v, want %v ± %v", i, got, d.P(i), tol)
		}
	}
}

func TestEstimateProductRoundTrip(t *testing.T) {
	d := MustProduct(TwoBlock(50, 0.4, 450, 0.02))
	rng := hashing.NewSplitMix64(7)
	const n = 12000
	data := d.SampleN(rng, n)
	est, err := EstimateProduct(data, d.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if est.Dim() != d.Dim() {
		t.Fatalf("dim %d, want %d", est.Dim(), d.Dim())
	}
	for i := 0; i < d.Dim(); i++ {
		p := d.P(i)
		tol := 5*math.Sqrt(p*(1-p)/n) + 1e-3
		if math.Abs(est.P(i)-p) > tol {
			t.Errorf("item %d: estimated %v, want %v ± %v", i, est.P(i), p, tol)
		}
	}
}

func TestEstimateProductInfersDimension(t *testing.T) {
	data := []bitvec.Vector{bitvec.New(0, 7), bitvec.New(3)}
	est, err := EstimateProduct(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Dim() != 8 {
		t.Errorf("inferred dim %d, want 8", est.Dim())
	}
	if math.Abs(est.P(7)-0.5) > 1e-12 || math.Abs(est.P(3)-0.5) > 1e-12 {
		t.Error("frequencies miscounted")
	}
	if _, err := EstimateProduct(nil, 0); err == nil {
		t.Error("empty data accepted")
	}
}

func TestSortedFrequencies(t *testing.T) {
	in := []float64{0.1, 0.9, 0.5}
	got := SortedFrequencies(in)
	if got[0] != 0.9 || got[1] != 0.5 || got[2] != 0.1 {
		t.Errorf("not sorted descending: %v", got)
	}
	if in[0] != 0.1 {
		t.Error("input mutated")
	}
}

func TestSampleCorrelatedMarginals(t *testing.T) {
	d := MustProduct(Uniform(300, 0.1))
	rng := hashing.NewSplitMix64(11)
	x := d.Sample(rng)
	for x.Len() < 10 { // ensure a meaningful overlap measurement
		x = d.Sample(rng)
	}
	const alpha = 2.0 / 3
	const n = 4000
	keptFrac, noiseLen := 0.0, 0.0
	for s := 0; s < n; s++ {
		q := d.SampleCorrelated(rng, x, alpha)
		prev := int64(-1)
		inter := 0
		for _, b := range q.Bits() {
			if int64(b) <= prev {
				t.Fatal("correlated sample bits not sorted distinct")
			}
			prev = int64(b)
			if x.Contains(b) {
				inter++
			}
		}
		keptFrac += float64(inter) / float64(x.Len())
		noiseLen += float64(q.Len() - inter)
	}
	keptFrac /= n
	noiseLen /= n
	wantKept := alpha + (1-alpha)*0.1
	if math.Abs(keptFrac-wantKept) > 0.02 {
		t.Errorf("kept fraction %v, want ≈ %v", keptFrac, wantKept)
	}
	wantNoise := (1 - alpha) * 0.1 * float64(d.Dim()-x.Len())
	if math.Abs(noiseLen-wantNoise) > 0.05*wantNoise+0.5 {
		t.Errorf("noise bits %v, want ≈ %v", noiseLen, wantNoise)
	}
}

// TestIndependenceRatioOnIndependentData: ≈ 1 by construction when the
// data really is a product sample, in both variants.
func TestIndependenceRatioOnIndependentData(t *testing.T) {
	d := MustProduct(PiecewiseZipf(250, 0.4, []PiecewiseZipfSegment{
		{FracEnd: 0.5, S: 0.4}, {FracEnd: 1, S: 0.9},
	}))
	rng := hashing.NewSplitMix64(19)
	data := d.SampleN(rng, 5000)
	for _, k := range []int{2, 3} {
		r := IndependenceRatio(data, d.Dim(), k, 800, 23)
		if r < 0.8 || r > 1.2 {
			t.Errorf("uniform subsets, |I|=%d: ratio %v, want ≈ 1", k, r)
		}
		rw := IndependenceRatioWeighted(data, d.Dim(), k, 800, 29)
		if rw < 0.8 || rw > 1.2 {
			t.Errorf("weighted subsets, |I|=%d: ratio %v, want ≈ 1", k, rw)
		}
	}
}

func TestIndependenceRatioDegenerateInputs(t *testing.T) {
	if r := IndependenceRatio(nil, 10, 2, 100, 1); r != 1 {
		t.Errorf("empty data ratio %v, want 1", r)
	}
	data := []bitvec.Vector{bitvec.New(), bitvec.New()}
	if r := IndependenceRatioWeighted(data, 5, 2, 100, 1); r != 1 {
		t.Errorf("all-zero data ratio %v, want 1", r)
	}
}

func TestPiecewiseZipfDegenerateFirstSegment(t *testing.T) {
	// A FracEnd = 0 first segment must be skipped, not panic.
	probs := PiecewiseZipf(10, 0.5, []PiecewiseZipfSegment{
		{FracEnd: 0, S: 1}, {FracEnd: 1, S: 1},
	})
	if probs[0] != 0.5 {
		t.Errorf("head = %v, want pMax", probs[0])
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1] {
			t.Fatalf("not non-increasing at %d", i)
		}
	}
}
