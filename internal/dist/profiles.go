package dist

import "math"

// Uniform returns d items each with probability p.
func Uniform(d int, p float64) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = p
	}
	return out
}

// Zipf returns a Zipfian profile p_i = pMax / (i+1)^s: the most frequent
// item has probability pMax and rank-r frequency decays as r^-s.
func Zipf(d int, pMax, s float64) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = pMax / math.Pow(float64(i+1), s)
	}
	return out
}

// Harmonic returns the motivating example's profile p_i = 1/(i+1)
// (the paper's §1 uses p_i = 1/i with 1-based items).
func Harmonic(d int) []float64 {
	return Zipf(d, 1, 1)
}

// TwoBlock returns na items with probability pa followed by nb items with
// probability pb — the §7.1 worked-example profile.
func TwoBlock(na int, pa float64, nb int, pb float64) []float64 {
	out := make([]float64, 0, na+nb)
	for i := 0; i < na; i++ {
		out = append(out, pa)
	}
	for i := 0; i < nb; i++ {
		out = append(out, pb)
	}
	return out
}

// Fig1Profile returns the Figure 1 profile over d items: half the items
// have probability p, the other half p/8.
func Fig1Profile(d int, p float64) []float64 {
	out := make([]float64, d)
	head := (d + 1) / 2
	for i := range out {
		if i < head {
			out[i] = p
		} else {
			out[i] = p / 8
		}
	}
	return out
}

// PiecewiseZipfSegment is one segment of a piecewise-Zipfian frequency
// spectrum (Figure 2 reports real spectra are "close to piecewise
// Zipfian"). The segment covers ranks up to ⌈FracEnd·d⌉ and decays with
// exponent S relative to the segment's own start.
type PiecewiseZipfSegment struct {
	// FracEnd is the fraction of the universe (by rank) where the segment
	// ends; the last segment must have FracEnd = 1.
	FracEnd float64
	// S is the Zipf exponent within the segment.
	S float64
}

// PiecewiseZipf materializes a piecewise-Zipfian profile of dimension d:
// the rank-1 item has frequency pMax, and within each segment the
// frequency decays as (local rank)^-S starting from the frequency reached
// at the previous segment's end, so the spectrum is non-increasing and
// continuous at the boundaries. An empty segment list means a single
// segment with S = 1 (plain Zipf).
func PiecewiseZipf(d int, pMax float64, segs []PiecewiseZipfSegment) []float64 {
	if len(segs) == 0 {
		segs = []PiecewiseZipfSegment{{FracEnd: 1, S: 1}}
	}
	out := make([]float64, d)
	segStart := 0 // first rank (0-based) of the current segment
	base := pMax  // frequency at the segment's start
	segIdx := 0
	for i := 0; i < d; i++ {
		// i > 0 guards degenerate FracEnd <= 0 segments: rank 1 always
		// belongs to the first segment (and carries pMax), empty segments
		// are skipped once a predecessor rank exists to anchor base.
		for segIdx < len(segs)-1 && i > 0 && float64(i) >= segs[segIdx].FracEnd*float64(d) {
			segIdx++
			segStart = i
			base = out[i-1]
		}
		local := float64(i-segStart) + 1
		out[i] = base / math.Pow(local, segs[segIdx].S)
	}
	return out
}

// Clamp returns a copy of probs with every value clamped into [lo, 1],
// the model's valid probability range.
func Clamp(probs []float64, lo float64) []float64 {
	out := make([]float64, len(probs))
	for i, p := range probs {
		switch {
		case p < lo:
			out[i] = lo
		case p > 1:
			out[i] = 1
		default:
			out[i] = p
		}
	}
	return out
}
