// Data cleaning: find near-duplicate records across two noisy copies of
// a catalog using a similarity join — the motivating application of the
// paper's introduction ("identify different representations of the same
// object").
//
// Records are token sets over a Zipfian vocabulary (a few very common
// tokens, a long tail of rare ones — the skew the paper exploits). Copy
// B of the catalog is a corrupted version of copy A: each record loses
// and gains some tokens. The join recovers the A↔B correspondence.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/join"
)

func main() {
	const (
		vocab     = 5000
		catalog   = 800
		noise     = 0.85 // token-retention probability when corrupting
		threshold = 0.6
	)
	// Zipfian token frequencies: frequent stop-word-ish tokens up front,
	// rare discriminating tokens in the tail.
	probs := dist.Zipf(vocab, 0.9, 0.4)
	d, err := dist.NewProduct(probs)
	if err != nil {
		log.Fatal(err)
	}

	rng := hashing.NewSplitMix64(7)
	catalogA := d.SampleN(rng, catalog)

	// Corrupt each record: keep each token with probability `noise`,
	// then add fresh noise tokens from the same vocabulary distribution.
	catalogB := make([]bitvec.Vector, catalog)
	for i, rec := range catalogA {
		kept := make([]uint32, 0, rec.Len())
		for _, tok := range rec.Bits() {
			if rng.NextUnit() < noise {
				kept = append(kept, tok)
			}
		}
		extra := d.Sample(rng)
		var extraKept []uint32
		for _, tok := range extra.Bits() {
			if rng.NextUnit() < 1-noise {
				extraKept = append(extraKept, tok)
			}
		}
		catalogB[i] = bitvec.New(append(kept, extraKept...)...)
	}

	// Index copy A for adversarial queries at the join threshold and run
	// the similarity join against copy B.
	ix, err := core.BuildAdversarial(d, catalogA, threshold, core.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	pairs, st, err := join.Run(ix, catalogB, threshold, bitvec.BraunBlanquetMeasure)
	if err != nil {
		log.Fatal(err)
	}

	correct, wrong := 0, 0
	matched := make(map[int]bool)
	for _, p := range pairs {
		if p.RIdx == p.SIdx {
			if !matched[p.RIdx] {
				matched[p.RIdx] = true
				correct++
			}
		} else {
			wrong++
		}
	}
	fmt.Printf("catalog size: %d records, vocabulary %d tokens\n", catalog, vocab)
	fmt.Printf("join verified %d candidates (brute force would verify %d)\n",
		st.Candidates, catalog*catalog)
	fmt.Printf("recovered %d/%d true duplicates; %d extra cross matches (genuinely similar records)\n",
		correct, catalog, wrong)
	for _, p := range pairs[:min(5, len(pairs))] {
		fmt.Printf("  B[%d] ↔ A[%d]  similarity %.3f\n", p.RIdx, p.SIdx, p.Similarity)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
