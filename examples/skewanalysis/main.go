// Skew analysis: the §8 methodology as a workflow. Given a dataset (here
// the SPOTIFY analog; swap in your own transaction file via
// internal/dataio), measure its frequency skew and deviation from
// independence, estimate the item probabilities (§9), and report the
// query exponents every method in this library would achieve on it.
//
// Run with: go run ./examples/skewanalysis
package main

import (
	"fmt"
	"log"
	"math"

	"skewsim/internal/datagen"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/rho"
)

func main() {
	const n = 1500
	prof, err := datagen.ProfileByName("SPOTIFY")
	if err != nil {
		log.Fatal(err)
	}
	rng := hashing.NewSplitMix64(2018)
	data := prof.Generate(rng, n)
	fmt.Printf("dataset: %s analog, %d vectors, universe %d\n", prof.Name, n, prof.Dim)

	// 1. Frequency skew (Figure 2's measurement).
	est, err := dist.EstimateProduct(data, prof.Dim)
	if err != nil {
		log.Fatal(err)
	}
	freqs := dist.SortedFrequencies(est.Probs())
	fmt.Printf("frequency spectrum: p(1)=%.4f p(10)=%.4f p(100)=%.4f p(1000)=%.5f\n",
		freqs[0], freqs[9], freqs[99], freqs[999])
	fmt.Printf("head/tail skew over the top 1000 ranks: %.0fx\n", freqs[0]/math.Max(freqs[999], 1e-9))

	// 2. Deviation from independence (Table 1's measurement).
	r2 := dist.IndependenceRatioWeighted(data, prof.Dim, 2, 300, rng.Next())
	r3 := dist.IndependenceRatioWeighted(data, prof.Dim, 3, 300, rng.Next())
	fmt.Printf("independence ratios: |I|=2: %.2f, |I|=3: %.2f (1.0 = independent)\n", r2, r3)
	if r2 > 2 {
		fmt.Println("  -> strong positive correlation; consider lsf.NewClusterWeigher if the structure is known (§9)")
	}

	// 3. Predicted exponents for a correlated search at alpha = 2/3 on
	// the estimated distribution.
	const alpha = 2.0 / 3
	terms := rho.FromProbs(est.Probs())
	ours, err := rho.CorrelatedRho(terms, alpha)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := rho.CorrelatedChosenPath(terms, alpha)
	if err != nil {
		log.Fatal(err)
	}
	pf, err := rho.PrefixFilterExponent(terms, float64(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted query exponents at alpha=%.2f:\n", alpha)
	fmt.Printf("  SkewSearch    n^%.3f\n", ours)
	fmt.Printf("  Chosen Path   n^%.3f\n", cp)
	fmt.Printf("  prefix filter n^%.3f (best case, rarest-token probe)\n", pf)
	fmt.Printf("  brute force   n^1.000\n")
	fmt.Printf("skew advantage over Chosen Path: n^%.3f (%.1fx at n=%d)\n",
		cp-ours, math.Pow(float64(n), cp-ours), n)
}
