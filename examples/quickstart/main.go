// Quickstart: build a SkewSearch index over vectors drawn from a skewed
// product distribution, then answer a correlated query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func main() {
	// A skewed distribution: 400 common items (p = 0.2) and 3200 rare
	// items (p = 0.025). Expected set size Σp = 160.
	probs := dist.TwoBlock(400, 0.2, 3200, 0.025)
	d, err := dist.NewProduct(probs)
	if err != nil {
		log.Fatal(err)
	}

	// A workload with planted α-correlated queries: each query q is a
	// noisy copy of some data vector x (q_i = x_i with probability α).
	const alpha = 0.75
	w, err := datagen.NewCorrelatedWorkload(d, 1000 /* data */, 5 /* queries */, alpha, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Index the dataset for correlated queries (Theorem 1 mode).
	ix, err := core.BuildCorrelated(d, w.Data, alpha, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors with %d filter repetitions (threshold b1 = %.3f)\n",
		len(w.Data), ix.Repetitions(), ix.Threshold())

	for k, q := range w.Queries {
		res := ix.Query(q)
		status := "MISS"
		if res.Found && res.ID == w.Targets[k] {
			status = "HIT (planted target)"
		} else if res.Found {
			status = "found another close vector"
		}
		fmt.Printf("query %d: %s  id=%d  similarity=%.3f  work: %d filters, %d candidates (of %d vectors)\n",
			k, status, res.ID, res.Similarity, res.Stats.Filters, res.Stats.Candidates, len(w.Data))
	}

	// The theory predicts the query exponent for this instance.
	rho, err := ix.PredictedQueryRho(w.Queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted query exponent rho = %.3f (cost ~ n^rho per repetition)\n", rho)
}
