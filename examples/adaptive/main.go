// Adaptive cost: Theorem 2's per-query guarantee says the adversarial
// structure adapts to each query's difficulty — the exponent ρ(q)
// depends on the probabilities of the query's own elements. Queries
// whose mass sits on rare items are "easy" (small ρ(q)), queries on
// common items are "hard" (ρ(q) approaches the worst case).
//
// This example builds ONE index over a mixed-skew dataset and compares
// the measured work for easy and hard queries against the per-query
// prediction.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
)

func main() {
	const (
		n  = 1500
		b1 = 0.6
	)
	// Universe: items 0..399 are common (p = 0.25); items 400..12399 are
	// rare (p = 0.01). Both blocks carry mass 100 and 120.
	probs := dist.TwoBlock(400, 0.25, 12000, 0.01)
	d, err := dist.NewProduct(probs)
	if err != nil {
		log.Fatal(err)
	}
	rng := hashing.NewSplitMix64(3)
	data := d.SampleN(rng, n)

	ix, err := core.BuildAdversarial(d, data, b1, core.Options{Seed: 9, Repetitions: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Build easy and hard queries from planted targets: take a data
	// vector and keep a b1-fraction of its bits, preferring rare bits
	// (easy) or common bits (hard); pad back to size with bits of the
	// opposite kind not in x so |q| = |x| and B(q, x) >= b1.
	isRare := func(e uint32) bool { return e >= 400 }
	makeQuery := func(x bitvec.Vector, preferRare bool) bitvec.Vector {
		var pref, rest []uint32
		for _, e := range x.Bits() {
			if isRare(e) == preferRare {
				pref = append(pref, e)
			} else {
				rest = append(rest, e)
			}
		}
		keep := int(b1*float64(x.Len())) + 1
		var bits []uint32
		bits = append(bits, pref...)
		if len(bits) > keep {
			bits = bits[:keep]
		} else {
			bits = append(bits, rest[:keep-len(bits)]...)
		}
		// Pad with fresh elements of the preferred kind so the query's
		// own composition (and hence rho(q)) reflects the preference.
		for e := uint32(0); len(bits) < x.Len() && int(e) < d.Dim(); e++ {
			cand := e
			if preferRare {
				cand = 400 + (e*7)%12000
			} else {
				cand = (e * 7) % 400
			}
			if !x.Contains(cand) && !contains(bits, cand) {
				bits = append(bits, cand)
			}
		}
		return bitvec.New(bits...)
	}

	type bucket struct {
		name       string
		preferRare bool
	}
	for _, bk := range []bucket{{"easy (rare-item queries)", true}, {"hard (common-item queries)", false}} {
		var work int
		var rhoSum float64
		const queries = 30
		for k := 0; k < queries; k++ {
			x := data[(k*53)%n]
			q := makeQuery(x, bk.preferRare)
			res := ix.QueryBest(q)
			work += res.Stats.Candidates
			rho, err := ix.PredictedQueryRho(q)
			if err != nil {
				log.Fatal(err)
			}
			rhoSum += rho
		}
		fmt.Printf("%-28s mean candidates %.1f   mean predicted rho(q) %.3f\n",
			bk.name, float64(work)/queries, rhoSum/queries)
	}
	fmt.Println("same index, same threshold — the structure adapts per query (Theorem 2).")
}

func contains(xs []uint32, v uint32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
