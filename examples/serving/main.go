// Serving: run SkewSearch as an online index — insert and delete while
// querying, watch memtables freeze into CSR segments and compact, then
// snapshot and restore, all through the segmented serving layer that
// cmd/skewsimd exposes over HTTP.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"fmt"
	"log"

	"skewsim/internal/bitvec"
	"skewsim/internal/core"
	"skewsim/internal/dist"
	"skewsim/internal/hashing"
	"skewsim/internal/segment"
)

func main() {
	// The same engine parameterization a static core.Index would use —
	// core.EngineParams is the shared source, so the mutable index runs
	// the paper's adversarial scheme with identical filter mappings.
	const n = 4096 // expected steady-state size (stopping rule)
	d, err := dist.NewProduct(dist.Zipf(512, 0.5, 1.0))
	if err != nil {
		log.Fatal(err)
	}
	params, err := core.EngineParams(core.Adversarial, d, n, 0.5, core.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := segment.New(segment.Config{
		Params:       params,
		N:            n,
		MemtableSize: 256, // small, to make freezing visible here
		MaxSegments:  2,   // aggressive compaction, same reason
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Stream inserts: memtables fill, rotate, and freeze into CSR
	// segments in the background while the index stays queryable.
	rng := hashing.NewSplitMix64(99)
	data := d.SampleN(rng, 1500)
	ids := make([]int64, len(data))
	for i, v := range data {
		if ids[i], err = idx.Insert(v); err != nil {
			log.Fatal(err)
		}
	}
	// Delete a tenth; tombstones mask them immediately, compaction
	// reclaims them when segments merge.
	for i := 0; i < len(ids); i += 10 {
		idx.Delete(ids[i])
	}
	idx.WaitIdle()
	st := idx.Stats()
	fmt.Printf("after %d inserts / %d deletes: %d live, %d frozen segments %v, %d in memtable (%d freezes, %d compactions)\n",
		len(ids), len(ids)/10, st.Live, st.Segments, st.SegmentSizes, st.Memtable, st.Freezes, st.Compactions)

	// Query while mutable: a planted near-duplicate of a live vector.
	q := data[1]
	match, qs, found := idx.QueryBest(q, bitvec.BraunBlanquetMeasure)
	fmt.Printf("self-query over %d segments: found=%v id=%d sim=%.2f (%d candidates, %d distinct)\n",
		qs.Segments, found, match.ID, match.Similarity, qs.Candidates, qs.Distinct)

	top, _ := idx.TopK(q, 3, bitvec.BraunBlanquetMeasure)
	fmt.Printf("top-3:")
	for _, m := range top {
		fmt.Printf(" (%d, %.2f)", m.ID, m.Similarity)
	}
	fmt.Println()

	// Snapshot the layered state and restore it into a fresh index —
	// same Params, same answers, ids and tombstones preserved.
	var snap bytes.Buffer
	if _, err := idx.WriteSnapshot(&snap); err != nil {
		log.Fatal(err)
	}
	restored, err := segment.ReadSnapshot(&snap, segment.Config{
		Params: params, N: n, MemtableSize: 256, MaxSegments: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	rmatch, _, rfound := restored.QueryBest(q, bitvec.BraunBlanquetMeasure)
	fmt.Printf("restored %d live vectors; same query: found=%v id=%d sim=%.2f\n",
		restored.Stats().Live, rfound, rmatch.ID, rmatch.Similarity)
}
