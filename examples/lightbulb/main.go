// Light bulb problem (search version): among n random vectors, one is
// planted to be α-correlated with the query. This is the cleanest
// correlation-search instance (Valiant's problem, §1 "Probabilistic
// viewpoint"), here in the sparse skewed variant the paper analyzes.
//
// The example contrasts SkewSearch with the exact brute-force scan on
// the same instances and reports the observed work ratio.
//
// Run with: go run ./examples/lightbulb
package main

import (
	"fmt"
	"log"
	"math"

	"skewsim/internal/bruteforce"
	"skewsim/internal/core"
	"skewsim/internal/datagen"
	"skewsim/internal/dist"
)

func main() {
	const (
		n       = 2000
		alpha   = 2.0 / 3
		queries = 25
	)
	// The Figure 1 profile: half the expected mass on common items
	// (p = 0.25), half on items eight times rarer.
	probs := dist.Fig1Profile(600, 0.25)
	d, err := dist.NewProduct(probs)
	if err != nil {
		log.Fatal(err)
	}
	w, err := datagen.NewCorrelatedWorkload(d, n, queries, alpha, 11)
	if err != nil {
		log.Fatal(err)
	}

	skew, err := core.BuildCorrelated(d, w.Data, alpha, core.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	bf, err := bruteforce.Build(w.Data, bruteforce.Options{})
	if err != nil {
		log.Fatal(err)
	}

	var skewWork, bfWork, hits int
	for k, q := range w.Queries {
		res := skew.Query(q)
		skewWork += res.Stats.Candidates
		if res.Found && res.ID == w.Targets[k] {
			hits++
		}
		bfWork += bf.QueryBest(q).Stats.Candidates
	}
	fmt.Printf("light bulb search: n=%d, alpha=%.3f, %d queries\n", n, alpha, queries)
	fmt.Printf("planted vector recovered: %d/%d\n", hits, queries)
	fmt.Printf("mean candidates verified per query: SkewSearch %.1f vs brute force %.1f (%.1fx less work)\n",
		float64(skewWork)/queries, float64(bfWork)/queries,
		float64(bfWork)/float64(max(skewWork, 1)))

	rho, err := skew.PredictedQueryRho(w.Queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theory: expected work n^rho with rho = %.3f (n^rho = %.1f per repetition, %d repetitions)\n",
		rho, math.Pow(float64(n), rho), skew.Repetitions())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
