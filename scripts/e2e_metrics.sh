#!/usr/bin/env sh
# End-to-end observability gate: boot a real skewsimd, drive it with
# skewsim load, then scrape GET /metrics and fail on missing or
# malformed metric families. This is the check that the instrumentation
# actually reaches the wire — unit tests cover each layer, this covers
# the wiring between them (daemon flags, registry plumbing, exposition
# over a real socket).
#
# Usage: scripts/e2e_metrics.sh [port]
set -eu

PORT="${1:-18080}"
ADDR="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "e2e: building binaries"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/skewsim" ./cmd/skewsim
go build -o "$WORK/skewsimd" ./cmd/skewsimd

echo "e2e: generating dataset"
"$WORK/datagen" -uniform 0.05 -dim 256 -n 2000 -seed 7 > "$WORK/data.txt"
"$WORK/datagen" -uniform 0.05 -dim 256 -n 200 -seed 8 > "$WORK/queries.txt"

echo "e2e: booting skewsimd on $ADDR"
"$WORK/skewsimd" -addr "127.0.0.1:${PORT}" -n 4096 -dim 256 -shards 2 \
    -memtable 512 -wal-dir "$WORK/wal" -snapshot-dir "" \
    -slow-query-ms 1000 -log-format json >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to accept requests (the scrape subcommand doubles
# as the readiness probe).
i=0
until "$WORK/skewsim" metrics -addr "$ADDR" -timeout 2s >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "e2e: daemon never became ready; log:" >&2
        cat "$WORK/daemon.log" >&2
        exit 1
    fi
    sleep 0.2
done

echo "e2e: driving load (insert + search, with end-of-run scrape)"
"$WORK/skewsim" load -addr "$ADDR" -data "$WORK/data.txt" \
    -queries "$WORK/queries.txt" -concurrency 4 -scrape-metrics

echo "e2e: validating /metrics families"
"$WORK/skewsim" metrics -addr "$ADDR" -require \
skewsim_http_requests_total,\
skewsim_http_request_seconds,\
skewsim_query_candidates,\
skewsim_segment_freezes_total,\
skewsim_wal_appends_total,\
skewsim_wal_fsync_seconds,\
skewsim_wal_commit_batch_records,\
skewsim_index_live_vectors,\
skewsim_index_segments,\
skewsim_admission_inflight,\
skewsim_wal_bytes

echo "e2e: ok"
