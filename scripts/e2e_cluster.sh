#!/usr/bin/env sh
# End-to-end failover gate: boot a primary, a replicating follower, and
# a skewgate in front of both; load through the gateway; SIGKILL the
# primary; require that reads keep succeeding (zero errors once the
# probe interval has passed) and that promoting the follower restores
# writes through the same gateway address. This is the check that the
# replication and failover plumbing works over real sockets and real
# process death — the Go fault suite covers the same transitions
# in-process with bit-identical state assertions.
#
# Usage: scripts/e2e_cluster.sh [base-port]
set -eu

BASE="${1:-18180}"
P_PORT="$BASE"                    # primary
F_PORT="$((BASE + 1))"            # follower
G_PORT="$((BASE + 2))"            # gateway
P_ADDR="http://127.0.0.1:${P_PORT}"
F_ADDR="http://127.0.0.1:${F_PORT}"
G_ADDR="http://127.0.0.1:${G_PORT}"
WORK="$(mktemp -d)"
P_PID=""
F_PID=""
G_PID=""

cleanup() {
    for pid in "$P_PID" "$F_PID" "$G_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "$P_PID" "$F_PID" "$G_PID"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "e2e-cluster: $*" >&2
    echo "--- primary log ---" >&2; cat "$WORK/primary.log" >&2 || true
    echo "--- follower log ---" >&2; cat "$WORK/follower.log" >&2 || true
    echo "--- gateway log ---" >&2; cat "$WORK/gateway.log" >&2 || true
    exit 1
}

# gauge ADDR NAME: print an integer-valued metric from ADDR/metrics.
gauge() {
    curl -fsS "$1/metrics" 2>/dev/null \
        | awk -v name="$2" '$1 == name { printf "%d\n", $2; found = 1 } END { if (!found) print "-1" }'
}

echo "e2e-cluster: building binaries"
go build -o "$WORK/datagen" ./cmd/datagen
go build -o "$WORK/skewsim" ./cmd/skewsim
go build -o "$WORK/skewsimd" ./cmd/skewsimd
go build -o "$WORK/skewgate" ./cmd/skewgate

echo "e2e-cluster: generating datasets"
"$WORK/datagen" -uniform 0.05 -dim 256 -n 1500 -seed 7 > "$WORK/data1.txt"
"$WORK/datagen" -uniform 0.05 -dim 256 -n 300 -seed 9 > "$WORK/data2.txt"
"$WORK/datagen" -uniform 0.05 -dim 256 -n 200 -seed 8 > "$WORK/queries.txt"

# Engine flags must match between primary and follower — replication
# ships WAL records, not parameters.
ENGINE_FLAGS="-n 4096 -dim 256 -shards 2 -memtable 512 -snapshot-dir=  -log-format json"

echo "e2e-cluster: booting primary on $P_ADDR"
# shellcheck disable=SC2086
"$WORK/skewsimd" -addr "127.0.0.1:${P_PORT}" $ENGINE_FLAGS \
    -wal-dir "$WORK/wal-primary" >"$WORK/primary.log" 2>&1 &
P_PID=$!

echo "e2e-cluster: booting follower on $F_ADDR (replica of primary)"
# shellcheck disable=SC2086
"$WORK/skewsimd" -addr "127.0.0.1:${F_PORT}" $ENGINE_FLAGS \
    -wal-dir "$WORK/wal-follower" -replica-of "$P_ADDR" >"$WORK/follower.log" 2>&1 &
F_PID=$!

wait_healthz() {
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] || { sleep 0.2; continue; }
        fail "$1 never became healthy"
    done
}
wait_healthz "$P_ADDR"
wait_healthz "$F_ADDR"

echo "e2e-cluster: booting gateway on $G_ADDR"
"$WORK/skewgate" -addr "127.0.0.1:${G_PORT}" \
    -backends "$P_ADDR,$F_ADDR" \
    -probe-interval 200ms -max-lag-records 100000 \
    -log-format json >"$WORK/gateway.log" 2>&1 &
G_PID=$!
wait_healthz "$G_ADDR"

echo "e2e-cluster: loading through the gateway"
"$WORK/skewsim" load -addr "$G_ADDR" -data "$WORK/data1.txt" \
    -queries "$WORK/queries.txt" -concurrency 4

echo "e2e-cluster: waiting for the follower to catch up"
i=0
until [ "$(gauge "$F_ADDR" skewsim_replica_lag_records)" = "0" ]; do
    i=$((i + 1))
    [ "$i" -ge 100 ] || { sleep 0.2; continue; }
    fail "follower lag never reached 0 (now $(gauge "$F_ADDR" skewsim_replica_lag_records))"
done

echo "e2e-cluster: checking replication metrics on the follower"
"$WORK/skewsim" metrics -addr "$F_ADDR" -require \
skewsim_replica_fetches_total,\
skewsim_replica_records_applied_total,\
skewsim_replica_bootstraps_total,\
skewsim_replica_lag_records,\
skewsim_replica_lag_seconds

echo "e2e-cluster: SIGKILLing the primary (pid $P_PID)"
kill -9 "$P_PID"
wait "$P_PID" 2>/dev/null || true
P_PID=""

# Give the prober one full interval to notice the corpse; after this
# point every read through the gateway must succeed.
sleep 1

echo "e2e-cluster: reads through the gateway must not fail"
# skewsim load exits non-zero if any request fails, which is exactly
# the zero-5xx assertion.
"$WORK/skewsim" load -addr "$G_ADDR" -queries "$WORK/queries.txt" \
    -concurrency 4 -repeat 2

echo "e2e-cluster: promoting the follower"
curl -fsS -X POST "$F_ADDR/v1/admin/promote" >/dev/null \
    || fail "promote request failed"

# Wait for the prober to see the new role.
i=0
until curl -fsS "$G_ADDR/healthz" 2>/dev/null | grep -q '"role":"primary"'; do
    i=$((i + 1))
    [ "$i" -ge 50 ] || { sleep 0.2; continue; }
    fail "gateway never saw the promoted primary"
done

echo "e2e-cluster: writes through the gateway must succeed again"
"$WORK/skewsim" load -addr "$G_ADDR" -data "$WORK/data2.txt" -concurrency 2

echo "e2e-cluster: checking failover metrics on the gateway"
"$WORK/skewsim" metrics -addr "$G_ADDR" -require \
skewgate_backend_healthy,\
skewgate_backend_lag_records,\
skewgate_requests_total,\
skewgate_failovers_total

echo "e2e-cluster: ok"
